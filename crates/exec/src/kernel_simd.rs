//! Explicit-SIMD lockstep lane walker over a heap-indexed tree image.
//!
//! The blocked kernel in [`kernel`](crate::kernel) walks [`LANES`] records
//! through a tree in scalar lockstep: per step and lane it loads a node's
//! `left`/`right`/`feature`/`threshold` words, compares, and selects the
//! next child index. This module removes the child-pointer loads entirely
//! by re-encoding each tree into an implicit binary heap:
//!
//! ```text
//!   WalkTree (explicit children)        SimdTree (heap re-encode)
//!   ┌────┬────┬────┬────┐               ft:      [feat, thr] per slot
//!   │left│rght│feat│ thr│  node i  ==>  payload: f32 per slot
//!   └────┴────┴────┴────┘               slot i children = 2i+1 / 2i+2
//! ```
//!
//! so one traversal step per lane is: gather `feat`, gather `thr`, gather
//! `x[feat]`, compare, and the pure-ALU update `idx = 2·idx + 2 + mask`
//! (`mask` is −1 when `x ≤ thr`, picking the left child `2·idx + 1`).
//! Leaves have their payload *propagated down* into every heap slot of
//! their would-be subtree, so all lanes run the same fixed `steps`
//! iterations with no self-loop bookkeeping and land on the correct
//! payload wherever they exit — the same trick the Fig. 4b capacity
//! padding plays, applied to the payload table.
//!
//! Three instruction tiers implement the identical step ([`SimdLevel`]):
//! AVX2 (8/16 lanes per step via `vpgatherdd`/`vgatherdps`), SSE2 (4-wide
//! compare/select with scalar gathers), and a hand-unrolled portable u32
//! fallback. The tier is picked at runtime ([`SimdLevel::detect`]) and can
//! be forced down with the `MLSCORE_SIMD` environment override; all tiers
//! are bit-exact with each other and with the blocked walker, because the
//! compare (`x <= thr`, ordered-quiet, NaN → right child) and the vote /
//! ascending-tree-order accumulation folds are identical.
//!
//! Build-time validation (every decision node's feature is in range, heap
//! arithmetic cannot leave the capacity array) is what licenses the
//! unchecked loads and gathers in the hot loops.

use mlscore_data::TabularFrame;
use mlscore_forest::{Predictions, RandomForest, Task};

use crate::kernel::{blocks, FlatImage, Scratch, SharedOut, WalkTree, LANES, SCRATCH};
use crate::pool::{ExecPool, RunConfig};
use crate::report::RunReport;

/// Instruction tier used by the SIMD lane walker. Ordered weakest→strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Hand-unrolled u32-lane scalar code: no `std::arch`, any target.
    Portable,
    /// SSE2: 4-wide compare/select, scalar feature/threshold gathers.
    Sse2,
    /// AVX2: 8-wide gathers and compares, 16 lanes in flight per tree.
    Avx2,
    /// AVX-512F: 16-wide gathers and mask compares, 64 lanes in flight.
    Avx512,
}

impl SimdLevel {
    /// The strongest tier this host can execute.
    pub fn supported() -> SimdLevel {
        #[cfg(target_arch = "x86_64")]
        {
            // The AVX-512 tier's tail strides reuse the AVX2 walkers, so
            // it requires both feature bits (every avx512f part ships
            // avx2, but detection is cheap and makes the dependency
            // explicit).
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx2")
            {
                SimdLevel::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2") {
                SimdLevel::Avx2
            } else {
                // SSE2 is part of the x86_64 baseline.
                SimdLevel::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdLevel::Portable
        }
    }

    /// Runtime pick: hardware detection, capped by the `MLSCORE_SIMD`
    /// environment override (`portable`, `sse2`, `avx2`, or `avx512`).
    ///
    /// The override can only *lower* the tier — requesting an unsupported
    /// one keeps the strongest the host actually has — and unknown values
    /// are ignored. Tests use it to force the fallback paths; since every
    /// tier is bit-exact, a stale read is harmless.
    pub fn detect() -> SimdLevel {
        let hw = Self::supported();
        match std::env::var("MLSCORE_SIMD") {
            Ok(v) => match Self::parse(&v) {
                Some(forced) => forced.min(hw),
                None => hw,
            },
            Err(_) => hw,
        }
    }

    /// Parses a tier name as accepted by the `MLSCORE_SIMD` override.
    pub fn parse(s: &str) -> Option<SimdLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "portable" | "scalar" => Some(SimdLevel::Portable),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            "avx512" | "avx512f" => Some(SimdLevel::Avx512),
            _ => None,
        }
    }

    /// Stable lower-case name (matches what [`SimdLevel::parse`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Portable => "portable",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// One tree re-encoded as an implicit heap for the SIMD walker.
///
/// Slot `i`'s children live at `2i + 1` and `2i + 2`; the arrays span the
/// full capacity `2^(steps+1) − 1` so `steps` descents from the root can
/// never index out of bounds. Decision slots carry `[feature,
/// threshold.to_bits()]` in `ft`; every slot under a leaf carries the
/// leaf's payload in `payload` (see the module docs for why).
pub(crate) struct SimdTree {
    /// Interleaved `[feature, threshold_bits]` per heap slot (`2 × cap`).
    /// Slots that are not live decision nodes keep `feature = 0` — an
    /// always-in-bounds column — and an arbitrary threshold.
    ft: Vec<u32>,
    /// Exit payload per heap slot (`cap`), leaf values propagated down.
    payload: Vec<f32>,
    /// Fixed descent count — the encoded capacity depth.
    steps: usize,
}

/// The per-forest SIMD image: one [`SimdTree`] per flat tree, in order.
pub(crate) struct SimdForest {
    pub(crate) trees: Vec<SimdTree>,
}

impl SimdForest {
    /// Re-encodes a decoded walk image into heap form.
    ///
    /// Panics if a decision node references a feature outside
    /// `0..n_features` — corrupt node tables would already panic the
    /// bounds-checked scalar walker; here the check runs once at build
    /// time and licenses the walkers' unchecked loads.
    pub(crate) fn build(walk: &[WalkTree], n_features: usize) -> Self {
        let trees = walk
            .iter()
            .map(|t| SimdTree::build(t, n_features))
            .collect();
        Self { trees }
    }
}

impl SimdTree {
    fn build(walk: &WalkTree, n_features: usize) -> Self {
        assert!(
            n_features > 0,
            "SIMD image requires at least one feature column"
        );
        let steps = walk.steps;
        let cap = (1usize << (steps + 1)) - 1;
        let mut ft = vec![0u32; 2 * cap];
        let mut payload = vec![0f32; cap];
        // Re-index from the flat encoding (whatever its node order) into
        // heap slots by walking the structure: (flat index, heap slot,
        // depth). Every heap slot is reachable from slot 0, so this visits
        // and initializes the entire capacity.
        let mut stack = vec![(0u32, 0usize, 0usize)];
        while let Some((fi, h, d)) = stack.pop() {
            let node = walk.nodes[fi as usize];
            let is_leaf = node.left == fi && node.right == fi;
            if is_leaf {
                fill_subtree(&mut payload, h, d, steps, walk.payload[fi as usize]);
            } else if d == steps {
                // Capacity exhausted at a decision node (impossible for
                // well-formed encodings, where every path fits in `steps`
                // levels): mirror the lockstep walker, which stops here
                // and reads the node's word 1.
                payload[h] = walk.payload[fi as usize];
            } else {
                assert!(
                    (node.feature as usize) < n_features,
                    "decision node feature {} out of range (model has {})",
                    node.feature,
                    n_features
                );
                ft[2 * h] = node.feature;
                ft[2 * h + 1] = node.threshold.to_bits();
                stack.push((node.left, 2 * h + 1, d + 1));
                stack.push((node.right, 2 * h + 2, d + 1));
            }
        }
        Self { ft, payload, steps }
    }

    /// Bytes held by this tree's heap image.
    pub(crate) fn image_bytes(&self) -> usize {
        self.ft.len() * 4 + self.payload.len() * 4
    }
}

/// Writes `v` into every heap slot of the subtree rooted at `h` (at depth
/// `d`), down to depth `steps`: a lane that reaches this leaf early keeps
/// descending — the heap walker has no self-loops — and must read the same
/// payload wherever it exits.
fn fill_subtree(payload: &mut [f32], h: usize, d: usize, steps: usize, v: f32) {
    let (mut lo, mut hi) = (h, h);
    for _ in d..=steps {
        for slot in payload.iter_mut().take(hi + 1).skip(lo) {
            *slot = v;
        }
        lo = 2 * lo + 1;
        hi = 2 * hi + 2;
    }
}

/// Walks `LANES` consecutive records (starting at `row0`) through one
/// heap-encoded tree in lockstep at the given tier.
///
/// Bit-exact with [`walk_flat_lanes`](crate::kernel) on the same tree.
// analyze: hot
#[allow(unsafe_code)]
#[inline]
fn walk8(tree: &SimdTree, data: &[f32], nf: usize, row0: usize, level: SimdLevel) -> [f32; LANES] {
    debug_assert!(data.len() >= (row0 + LANES) * nf);
    // SAFETY: the caller passes a frame whose width matched the forest at
    // entry (`score_simd_batch` asserts it) with at least `LANES` full
    // rows at `row0`; tree invariants are established by `SimdTree::build`.
    #[cfg(target_arch = "x86_64")]
    match level {
        // A single 8-lane group can't fill a 512-bit gather; the AVX2
        // walker is the right tool for the tail stride.
        SimdLevel::Avx512 | SimdLevel::Avx2 => {
            return unsafe { x86::walk8_avx2(tree, data, nf, row0) }
        }
        SimdLevel::Sse2 => return unsafe { x86::walk8_sse2(tree, data, nf, row0) },
        SimdLevel::Portable => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = level;
    // SAFETY: as above.
    unsafe { walk8_portable(tree, data, nf, row0) }
}

/// Walks `2 × LANES` records through one tree: two independent lane groups
/// in flight so the gather latency of one chain hides behind the other.
// analyze: hot
#[allow(unsafe_code)]
#[inline]
fn walk16(
    tree: &SimdTree,
    data: &[f32],
    nf: usize,
    row0: usize,
    level: SimdLevel,
) -> [f32; 2 * LANES] {
    debug_assert!(data.len() >= (row0 + 2 * LANES) * nf);
    #[cfg(target_arch = "x86_64")]
    match level {
        // SAFETY: same contract as `walk8`, with `2 × LANES` rows.
        SimdLevel::Avx512 => return unsafe { x86::walk16_avx512(tree, data, nf, row0) },
        SimdLevel::Avx2 => return unsafe { x86::walk16_avx2(tree, data, nf, row0) },
        _ => {}
    }
    let lo = walk8(tree, data, nf, row0, level);
    let hi = walk8(tree, data, nf, row0 + LANES, level);
    let mut out = [0f32; 2 * LANES];
    out[..LANES].copy_from_slice(&lo);
    out[LANES..].copy_from_slice(&hi);
    out
}

/// Walks `4 × LANES` records through one tree — the main-loop stride,
/// enough independent chains to hide the dependent gather latency.
// analyze: hot
#[allow(unsafe_code)]
#[inline]
fn walk32(
    tree: &SimdTree,
    data: &[f32],
    nf: usize,
    row0: usize,
    level: SimdLevel,
) -> [f32; 4 * LANES] {
    debug_assert!(data.len() >= (row0 + 4 * LANES) * nf);
    #[cfg(target_arch = "x86_64")]
    match level {
        // SAFETY: same contract as `walk8`, with `4 × LANES` rows.
        SimdLevel::Avx512 => return unsafe { x86::walk32_avx512(tree, data, nf, row0) },
        SimdLevel::Avx2 => return unsafe { x86::walk32_avx2(tree, data, nf, row0) },
        _ => {}
    }
    let lo = walk16(tree, data, nf, row0, level);
    let hi = walk16(tree, data, nf, row0 + 2 * LANES, level);
    let mut out = [0f32; 4 * LANES];
    out[..2 * LANES].copy_from_slice(&lo);
    out[2 * LANES..].copy_from_slice(&hi);
    out
}

/// Walks `8 × LANES` records through one tree — the main-loop stride on
/// AVX2, where eight independent chains saturate the gather ports.
// analyze: hot
#[allow(unsafe_code)]
#[inline]
fn walk64(
    tree: &SimdTree,
    data: &[f32],
    nf: usize,
    row0: usize,
    level: SimdLevel,
) -> [f32; 8 * LANES] {
    debug_assert!(data.len() >= (row0 + 8 * LANES) * nf);
    #[cfg(target_arch = "x86_64")]
    match level {
        // SAFETY: same contract as `walk8`, with `8 × LANES` rows.
        SimdLevel::Avx512 => return unsafe { x86::walk64_avx512(tree, data, nf, row0) },
        SimdLevel::Avx2 => return unsafe { x86::walk64_avx2(tree, data, nf, row0) },
        _ => {}
    }
    let lo = walk32(tree, data, nf, row0, level);
    let hi = walk32(tree, data, nf, row0 + 4 * LANES, level);
    let mut out = [0f32; 8 * LANES];
    out[..4 * LANES].copy_from_slice(&lo);
    out[4 * LANES..].copy_from_slice(&hi);
    out
}

/// Hand-unrolled u32-lane portable walker: no `std::arch`, same unchecked
/// loads as the vector tiers.
///
/// # Safety
///
/// `data` must hold at least `(row0 + LANES) * nf` elements and `nf` must
/// equal the feature width the tree was built against.
// analyze: hot
#[allow(unsafe_code)]
#[inline]
unsafe fn walk8_portable(tree: &SimdTree, data: &[f32], nf: usize, row0: usize) -> [f32; LANES] {
    let ft = tree.ft.as_slice();
    let base = row0 * nf;
    let mut idx = [0u32; LANES];
    for _ in 0..tree.steps {
        macro_rules! lane {
            ($l:literal) => {{
                // SAFETY: heap indices stay below capacity by arithmetic
                // (`2i + 2` from depth < steps), features were validated
                // against `nf` at build, and the caller guarantees `data`
                // covers rows `row0 .. row0 + LANES`.
                unsafe {
                    let h = idx[$l] as usize * 2;
                    let f = *ft.get_unchecked(h);
                    let t = f32::from_bits(*ft.get_unchecked(h + 1));
                    let x = *data.get_unchecked(base + $l * nf + f as usize);
                    idx[$l] = 2 * idx[$l] + 2 - (x <= t) as u32;
                }
            }};
        }
        lane!(0);
        lane!(1);
        lane!(2);
        lane!(3);
        lane!(4);
        lane!(5);
        lane!(6);
        lane!(7);
    }
    let mut out = [0f32; LANES];
    for l in 0..LANES {
        // SAFETY: final heap indices are below capacity (see above).
        out[l] = unsafe { *tree.payload.get_unchecked(idx[l] as usize) };
    }
    out
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `std::arch` walkers. All `unsafe` here is (a) intrinsics gated by
    //! `#[target_feature]` — callers go through [`super::walk8`], which
    //! only routes to a tier reported by `SimdLevel::supported()` — and
    //! (b) unchecked loads/gathers licensed by `SimdTree::build`'s
    //! validation plus the caller's row-coverage contract.
    #![allow(unsafe_code)]

    use std::arch::x86_64::*;

    use super::{SimdTree, LANES};

    /// 8-lane AVX2 walker: one gather per field, pure-ALU child step.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `data` must hold `(row0 + LANES) * nf` elements and
    /// `nf` must equal the tree's build-time feature width.
    // analyze: hot
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn walk8_avx2(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [f32; LANES] {
        let ft = tree.ft.as_ptr() as *const i32;
        let row = data.as_ptr().add(row0 * nf);
        let nf = nf as i32;
        let lane_off = _mm256_setr_epi32(0, nf, 2 * nf, 3 * nf, 4 * nf, 5 * nf, 6 * nf, 7 * nf);
        let one = _mm256_set1_epi32(1);
        let two = _mm256_set1_epi32(2);
        let mut idx = _mm256_setzero_si256();
        for _ in 0..tree.steps {
            let h2 = _mm256_slli_epi32::<1>(idx);
            let feat = _mm256_i32gather_epi32::<4>(ft, h2);
            let thr = _mm256_i32gather_ps::<4>(ft as *const f32, _mm256_add_epi32(h2, one));
            let x = _mm256_i32gather_ps::<4>(row, _mm256_add_epi32(lane_off, feat));
            // Ordered-quiet `x <= thr`: NaN compares false → right child,
            // exactly the scalar walkers' `if x <= t` semantics.
            let go_left = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LE_OQ>(x, thr));
            // left = 2i+1, right = 2i+2; `go_left` lanes are −1.
            idx = _mm256_add_epi32(_mm256_add_epi32(idx, idx), _mm256_add_epi32(two, go_left));
        }
        let leaf = _mm256_i32gather_ps::<4>(tree.payload.as_ptr(), idx);
        let mut out = [0f32; LANES];
        _mm256_storeu_ps(out.as_mut_ptr(), leaf);
        out
    }

    /// `G × 8`-lane AVX2 walker: `G` independent 8-lane chains
    /// interleaved in one loop body, so while one chain waits on its
    /// dependent `feature → x[feature]` gather pair the others issue
    /// theirs. The per-step critical path is two gather latencies
    /// (~40 cycles); four chains keep the gather ports saturated.
    ///
    /// # Safety
    ///
    /// As [`walk8_avx2`], with `G × LANES` rows at `row0`.
    // analyze: hot
    #[target_feature(enable = "avx2")]
    unsafe fn walk_groups_avx2<const G: usize>(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [[f32; LANES]; G] {
        let ft = tree.ft.as_ptr() as *const i32;
        let row = data.as_ptr().add(row0 * nf);
        let nf = nf as i32;
        let lane0 = _mm256_setr_epi32(0, nf, 2 * nf, 3 * nf, 4 * nf, 5 * nf, 6 * nf, 7 * nf);
        let one = _mm256_set1_epi32(1);
        let two = _mm256_set1_epi32(2);
        let mut lane_off = [lane0; G];
        for (g, off) in lane_off.iter_mut().enumerate() {
            *off = _mm256_add_epi32(lane0, _mm256_set1_epi32(8 * nf * g as i32));
        }
        let mut idx = [_mm256_setzero_si256(); G];
        for _ in 0..tree.steps {
            let mut h2 = [_mm256_setzero_si256(); G];
            let mut feat = h2;
            let mut thr = [_mm256_setzero_ps(); G];
            let mut x = thr;
            for g in 0..G {
                h2[g] = _mm256_slli_epi32::<1>(idx[g]);
            }
            for g in 0..G {
                feat[g] = _mm256_i32gather_epi32::<4>(ft, h2[g]);
            }
            for g in 0..G {
                thr[g] = _mm256_i32gather_ps::<4>(ft as *const f32, _mm256_add_epi32(h2[g], one));
            }
            for g in 0..G {
                x[g] = _mm256_i32gather_ps::<4>(row, _mm256_add_epi32(lane_off[g], feat[g]));
            }
            for g in 0..G {
                let go_left = _mm256_castps_si256(_mm256_cmp_ps::<_CMP_LE_OQ>(x[g], thr[g]));
                idx[g] = _mm256_add_epi32(
                    _mm256_add_epi32(idx[g], idx[g]),
                    _mm256_add_epi32(two, go_left),
                );
            }
        }
        let mut out = [[0f32; LANES]; G];
        for g in 0..G {
            let leaf = _mm256_i32gather_ps::<4>(tree.payload.as_ptr(), idx[g]);
            _mm256_storeu_ps(out[g].as_mut_ptr(), leaf);
        }
        out
    }

    /// 16-lane AVX2 walker: two independent 8-lane chains.
    ///
    /// # Safety
    ///
    /// As [`walk8_avx2`], with `2 × LANES` rows at `row0`.
    // analyze: hot
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn walk16_avx2(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [f32; 2 * LANES] {
        let groups = walk_groups_avx2::<2>(tree, data, nf, row0);
        let mut out = [0f32; 2 * LANES];
        out[..LANES].copy_from_slice(&groups[0]);
        out[LANES..].copy_from_slice(&groups[1]);
        out
    }

    /// 32-lane AVX2 walker: four independent 8-lane chains.
    ///
    /// # Safety
    ///
    /// As [`walk8_avx2`], with `4 × LANES` rows at `row0`.
    // analyze: hot
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn walk32_avx2(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [f32; 4 * LANES] {
        let groups = walk_groups_avx2::<4>(tree, data, nf, row0);
        let mut out = [0f32; 4 * LANES];
        for (g, group) in groups.iter().enumerate() {
            out[g * LANES..(g + 1) * LANES].copy_from_slice(group);
        }
        out
    }

    /// 64-lane AVX2 walker: eight independent 8-lane chains.
    ///
    /// # Safety
    ///
    /// As [`walk8_avx2`], with `8 × LANES` rows at `row0`.
    // analyze: hot
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn walk64_avx2(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [f32; 8 * LANES] {
        let groups = walk_groups_avx2::<8>(tree, data, nf, row0);
        let mut out = [0f32; 8 * LANES];
        for (g, group) in groups.iter().enumerate() {
            out[g * LANES..(g + 1) * LANES].copy_from_slice(group);
        }
        out
    }

    /// `G × 16`-lane AVX-512 walker: the same step as
    /// [`walk_groups_avx2`] on 512-bit registers — 16 lanes per gather
    /// halve the instruction count, the mask compare
    /// (`_mm512_cmp_ps_mask`, ordered-quiet, NaN → right) replaces the
    /// blend arithmetic with a masked subtract, and 32 zmm registers keep
    /// `G` chains live without spills.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F; `data` must hold `(row0 + G × 16) * nf`
    /// elements and `nf` must equal the tree's build-time feature width.
    // analyze: hot
    #[target_feature(enable = "avx512f")]
    unsafe fn walk_groups_avx512<const G: usize>(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [[f32; 2 * LANES]; G] {
        let ft = tree.ft.as_ptr() as *const i32;
        let row = data.as_ptr().add(row0 * nf);
        let nf = nf as i32;
        #[rustfmt::skip]
        let lane0 = _mm512_setr_epi32(
            0, nf, 2 * nf, 3 * nf, 4 * nf, 5 * nf, 6 * nf, 7 * nf,
            8 * nf, 9 * nf, 10 * nf, 11 * nf, 12 * nf, 13 * nf, 14 * nf, 15 * nf,
        );
        let one = _mm512_set1_epi32(1);
        let two = _mm512_set1_epi32(2);
        let mut lane_off = [lane0; G];
        for (g, off) in lane_off.iter_mut().enumerate() {
            *off = _mm512_add_epi32(lane0, _mm512_set1_epi32(16 * nf * g as i32));
        }
        let mut idx = [_mm512_setzero_si512(); G];
        for _ in 0..tree.steps {
            let mut h2 = [_mm512_setzero_si512(); G];
            let mut feat = h2;
            let mut thr = [_mm512_setzero_ps(); G];
            let mut x = thr;
            for g in 0..G {
                h2[g] = _mm512_slli_epi32::<1>(idx[g]);
            }
            for g in 0..G {
                feat[g] = _mm512_i32gather_epi32::<4>(h2[g], ft);
            }
            for g in 0..G {
                thr[g] = _mm512_i32gather_ps::<4>(_mm512_add_epi32(h2[g], one), ft as *const f32);
            }
            for g in 0..G {
                x[g] = _mm512_i32gather_ps::<4>(_mm512_add_epi32(lane_off[g], feat[g]), row);
            }
            for g in 0..G {
                // Ordered-quiet `x <= thr`: NaN compares false → right
                // child, matching every scalar walker.
                let go_left = _mm512_cmp_ps_mask::<_CMP_LE_OQ>(x[g], thr[g]);
                let right = _mm512_add_epi32(_mm512_add_epi32(idx[g], idx[g]), two);
                // left = right − 1 on the lanes whose compare succeeded.
                idx[g] = _mm512_mask_sub_epi32(right, go_left, right, one);
            }
        }
        let mut out = [[0f32; 2 * LANES]; G];
        for g in 0..G {
            let leaf = _mm512_i32gather_ps::<4>(idx[g], tree.payload.as_ptr());
            _mm512_storeu_ps(out[g].as_mut_ptr(), leaf);
        }
        out
    }

    /// 16-lane AVX-512 walker: one 16-lane chain.
    ///
    /// # Safety
    ///
    /// As [`walk_groups_avx512`], with `2 × LANES` rows at `row0`.
    // analyze: hot
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn walk16_avx512(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [f32; 2 * LANES] {
        walk_groups_avx512::<1>(tree, data, nf, row0)[0]
    }

    /// 32-lane AVX-512 walker: two independent 16-lane chains.
    ///
    /// # Safety
    ///
    /// As [`walk_groups_avx512`], with `4 × LANES` rows at `row0`.
    // analyze: hot
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn walk32_avx512(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [f32; 4 * LANES] {
        let groups = walk_groups_avx512::<2>(tree, data, nf, row0);
        let mut out = [0f32; 4 * LANES];
        out[..2 * LANES].copy_from_slice(&groups[0]);
        out[2 * LANES..].copy_from_slice(&groups[1]);
        out
    }

    /// 64-lane AVX-512 walker: four independent 16-lane chains.
    ///
    /// # Safety
    ///
    /// As [`walk_groups_avx512`], with `8 × LANES` rows at `row0`.
    // analyze: hot
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn walk64_avx512(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [f32; 8 * LANES] {
        let groups = walk_groups_avx512::<4>(tree, data, nf, row0);
        let mut out = [0f32; 8 * LANES];
        for (g, group) in groups.iter().enumerate() {
            out[g * 2 * LANES..(g + 1) * 2 * LANES].copy_from_slice(group);
        }
        out
    }

    /// 8-lane SSE2 walker: scalar gathers (SSE2 has none), 4-wide ordered
    /// compare and child-index arithmetic on xmm registers, two halves.
    ///
    /// # Safety
    ///
    /// `data` must hold `(row0 + LANES) * nf` elements and `nf` must equal
    /// the tree's build-time feature width. (SSE2 itself is part of the
    /// x86_64 baseline.)
    // analyze: hot
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn walk8_sse2(
        tree: &SimdTree,
        data: &[f32],
        nf: usize,
        row0: usize,
    ) -> [f32; LANES] {
        let ft = tree.ft.as_slice();
        let base = row0 * nf;
        let two = _mm_set1_epi32(2);
        let mut v0 = _mm_setzero_si128();
        let mut v1 = _mm_setzero_si128();
        let mut hid = [0i32; LANES];
        let mut thr = [0f32; LANES];
        let mut x = [0f32; LANES];
        for _ in 0..tree.steps {
            _mm_storeu_si128(hid.as_mut_ptr() as *mut __m128i, v0);
            _mm_storeu_si128(hid.as_mut_ptr().add(4) as *mut __m128i, v1);
            for l in 0..LANES {
                let h = hid[l] as usize * 2;
                let f = *ft.get_unchecked(h) as usize;
                thr[l] = f32::from_bits(*ft.get_unchecked(h + 1));
                x[l] = *data.get_unchecked(base + l * nf + f);
            }
            let m0 = _mm_castps_si128(_mm_cmple_ps(
                _mm_loadu_ps(x.as_ptr()),
                _mm_loadu_ps(thr.as_ptr()),
            ));
            let m1 = _mm_castps_si128(_mm_cmple_ps(
                _mm_loadu_ps(x.as_ptr().add(4)),
                _mm_loadu_ps(thr.as_ptr().add(4)),
            ));
            v0 = _mm_add_epi32(_mm_add_epi32(v0, v0), _mm_add_epi32(two, m0));
            v1 = _mm_add_epi32(_mm_add_epi32(v1, v1), _mm_add_epi32(two, m1));
        }
        _mm_storeu_si128(hid.as_mut_ptr() as *mut __m128i, v0);
        _mm_storeu_si128(hid.as_mut_ptr().add(4) as *mut __m128i, v1);
        let mut out = [0f32; LANES];
        for l in 0..LANES {
            out[l] = *tree.payload.get_unchecked(hid[l] as usize);
        }
        out
    }
}

/// Scores one record block of a classification forest with the SIMD
/// walker into `votes`.
// analyze: hot
#[allow(clippy::too_many_arguments)]
fn simd_classify_block(
    image: &FlatImage,
    frame: &TabularFrame,
    rows: std::ops::Range<usize>,
    n_classes: usize,
    tree_block: usize,
    level: SimdLevel,
    s: &mut Scratch,
    out: &SharedOut<u32>,
) {
    let blen = rows.len();
    let nf = frame.n_features();
    let data = frame.as_slice();
    s.votes.clear();
    s.votes.resize(blen * n_classes, 0);
    let chunks = image
        .simd()
        .trees
        .chunks(tree_block)
        .zip(image.flat().trees().chunks(tree_block));
    for (schunk, fchunk) in chunks {
        let mut k = 0;
        while k + 8 * LANES <= blen {
            for tree in schunk {
                let leaves = walk64(tree, data, nf, rows.start + k, level);
                for (l, &leaf) in leaves.iter().enumerate() {
                    s.votes[(k + l) * n_classes + leaf as usize] += 1;
                }
            }
            k += 8 * LANES;
        }
        while k + 4 * LANES <= blen {
            for tree in schunk {
                let leaves = walk32(tree, data, nf, rows.start + k, level);
                for (l, &leaf) in leaves.iter().enumerate() {
                    s.votes[(k + l) * n_classes + leaf as usize] += 1;
                }
            }
            k += 4 * LANES;
        }
        while k + LANES <= blen {
            for tree in schunk {
                let leaves = walk8(tree, data, nf, rows.start + k, level);
                for (l, &leaf) in leaves.iter().enumerate() {
                    s.votes[(k + l) * n_classes + leaf as usize] += 1;
                }
            }
            k += LANES;
        }
        for tree in fchunk {
            for r in k..blen {
                let c = tree.score(frame.row(rows.start + r)) as usize;
                s.votes[r * n_classes + c] += 1;
            }
        }
    }
    for r in 0..blen {
        let counts = &s.votes[r * n_classes..(r + 1) * n_classes];
        out.write(rows.start + r, RandomForest::majority(counts));
    }
}

/// Scores one record block of a regression forest with the SIMD walker.
// analyze: hot
fn simd_regress_block(
    image: &FlatImage,
    frame: &TabularFrame,
    rows: std::ops::Range<usize>,
    tree_block: usize,
    level: SimdLevel,
    s: &mut Scratch,
    out: &SharedOut<f32>,
) {
    let blen = rows.len();
    let nf = frame.n_features();
    let data = frame.as_slice();
    let n_trees = image.flat().n_trees() as f32;
    s.acc.clear();
    s.acc.resize(blen, 0.0);
    // Chunks ascend and trees ascend within each chunk, so each row's
    // accumulator adds tree outputs in exactly the sequential fold order.
    let chunks = image
        .simd()
        .trees
        .chunks(tree_block)
        .zip(image.flat().trees().chunks(tree_block));
    for (schunk, fchunk) in chunks {
        let mut k = 0;
        while k + 8 * LANES <= blen {
            for tree in schunk {
                let leaves = walk64(tree, data, nf, rows.start + k, level);
                for (l, &leaf) in leaves.iter().enumerate() {
                    s.acc[k + l] += leaf;
                }
            }
            k += 8 * LANES;
        }
        while k + 4 * LANES <= blen {
            for tree in schunk {
                let leaves = walk32(tree, data, nf, rows.start + k, level);
                for (l, &leaf) in leaves.iter().enumerate() {
                    s.acc[k + l] += leaf;
                }
            }
            k += 4 * LANES;
        }
        while k + LANES <= blen {
            for tree in schunk {
                let leaves = walk8(tree, data, nf, rows.start + k, level);
                for (l, &leaf) in leaves.iter().enumerate() {
                    s.acc[k + l] += leaf;
                }
            }
            k += LANES;
        }
        for tree in fchunk {
            for r in k..blen {
                s.acc[r] += tree.score(frame.row(rows.start + r));
            }
        }
    }
    for r in 0..blen {
        out.write(rows.start + r, s.acc[r] / n_trees);
    }
}

/// Scores a frame against a prepared [`FlatImage`] with the explicit-SIMD
/// lane walker at the given tier.
///
/// Bit-exact with [`score_image_batch`](crate::kernel::score_image_batch)
/// (and therefore with the sequential `score_one`): the traversal
/// decisions, vote counts, and ascending-tree-order regression folds are
/// identical at every tier.
///
/// # Panics
///
/// Panics if the frame's feature count differs from the model's.
pub fn score_simd_batch(
    image: &FlatImage,
    frame: &TabularFrame,
    pool: &ExecPool,
    cfg: &RunConfig,
    level: SimdLevel,
) -> (Predictions, RunReport) {
    let forest = image.flat();
    assert_eq!(
        frame.n_features(),
        forest.n_features(),
        "frame/model feature width mismatch: frame has {} features, model expects {}",
        frame.n_features(),
        forest.n_features()
    );
    let n = frame.n_rows();
    match forest.task() {
        Task::Classification { n_classes } => {
            let n_classes = n_classes as usize;
            let mut out = vec![0u32; n];
            let shared = SharedOut::new(&mut out);
            let report = pool.run(n, cfg, &|_w, range| {
                SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    for rows in blocks(range.clone(), cfg.record_block) {
                        simd_classify_block(
                            image,
                            frame,
                            rows,
                            n_classes,
                            cfg.tree_block,
                            level,
                            s,
                            &shared,
                        );
                    }
                });
            });
            (Predictions::Classes(out), report)
        }
        Task::Regression => {
            let mut out = vec![0f32; n];
            let shared = SharedOut::new(&mut out);
            let report = pool.run(n, cfg, &|_w, range| {
                SCRATCH.with(|s| {
                    let s = &mut *s.borrow_mut();
                    for rows in blocks(range.clone(), cfg.record_block) {
                        simd_regress_block(image, frame, rows, cfg.tree_block, level, s, &shared);
                    }
                });
            });
            (Predictions::Values(out), report)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_forest::{ForestConfig, RandomForest};

    fn frame(rows: usize, nf: usize, seed: u64) -> TabularFrame {
        let data: Vec<f32> = (0..rows * nf)
            .map(|i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(seed)) % 1000) as f32 / 1000.0
            })
            .collect();
        TabularFrame::from_rows(data, nf).unwrap()
    }

    fn levels() -> Vec<SimdLevel> {
        let mut ls = vec![SimdLevel::Portable];
        if SimdLevel::supported() >= SimdLevel::Sse2 {
            ls.push(SimdLevel::Sse2);
        }
        if SimdLevel::supported() >= SimdLevel::Avx2 {
            ls.push(SimdLevel::Avx2);
        }
        if SimdLevel::supported() >= SimdLevel::Avx512 {
            ls.push(SimdLevel::Avx512);
        }
        ls
    }

    #[test]
    fn every_level_matches_blocked_classification() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(24, 5, 3).with_depth(7), 42);
        let image = FlatImage::from_forest(&forest, 7).unwrap();
        let f = frame(333, 5, 1);
        let pool = ExecPool::new(4);
        let cfg = RunConfig::for_threads(4)
            .with_record_block(32)
            .with_tree_block(5);
        let (blocked, _) = crate::kernel::score_image_batch(&image, &f, &pool, &cfg);
        for level in levels() {
            let (simd, report) = score_simd_batch(&image, &f, &pool, &cfg, level);
            assert_eq!(simd, blocked, "level {level:?}");
            assert_eq!(report.rows(), 333);
        }
    }

    #[test]
    fn every_level_matches_blocked_regression_bit_exact() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::regression(17, 4).with_depth(6), 9);
        let image = FlatImage::from_forest(&forest, 6).unwrap();
        let f = frame(203, 4, 7);
        let pool = ExecPool::new(3);
        let cfg = RunConfig::for_threads(3)
            .with_record_block(48)
            .with_tree_block(4);
        let (blocked, _) = crate::kernel::score_image_batch(&image, &f, &pool, &cfg);
        let want: Vec<u32> = blocked
            .as_values()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for level in levels() {
            let (simd, _) = score_simd_batch(&image, &f, &pool, &cfg, level);
            let got: Vec<u32> = simd
                .as_values()
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, want, "level {level:?}");
        }
    }

    #[test]
    fn sparse_trained_tree_heap_reencode_matches_scalar() {
        // Trained (non-full) trees exercise the leaf payload propagation:
        // most leaves sit far above the capacity depth.
        use mlscore_forest::{ForestBuilder, TrainOptions};
        let nf = 5usize;
        let train = frame(300, nf, 17);
        let y: Vec<u32> = (0..300)
            .map(|i| ((i * 2654435761usize) >> 7) as u32 % 3)
            .collect();
        let forest = ForestBuilder::new(
            9,
            TrainOptions {
                max_depth: 6,
                ..Default::default()
            },
        )
        .train_classifier(train.as_slice(), nf, &y, 3)
        .unwrap();
        let image = FlatImage::from_forest(&forest, 6).unwrap();
        let f = frame(100, nf, 3);
        let pool = ExecPool::new(2);
        let cfg = RunConfig::for_threads(2);
        let (blocked, _) = crate::kernel::score_image_batch(&image, &f, &pool, &cfg);
        for level in levels() {
            let (simd, _) = score_simd_batch(&image, &f, &pool, &cfg, level);
            assert_eq!(simd, blocked, "level {level:?}");
        }
    }

    #[test]
    fn short_and_empty_batches() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(4, 3, 2).with_depth(4), 1);
        let image = FlatImage::from_forest(&forest, 4).unwrap();
        let pool = ExecPool::new(2);
        let cfg = RunConfig::default();
        for rows in [0usize, 1, 7, 8, 9, 15, 16, 17] {
            let f = frame(rows, 3, rows as u64);
            let (blocked, _) = crate::kernel::score_image_batch(&image, &f, &pool, &cfg);
            for level in levels() {
                let (simd, _) = score_simd_batch(&image, &f, &pool, &cfg, level);
                assert_eq!(simd, blocked, "rows {rows} level {level:?}");
            }
        }
    }

    #[test]
    fn depth_zero_forest() {
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(3, 2).with_depth(0), 2);
        let image = FlatImage::from_forest(&forest, 0).unwrap();
        let f = frame(33, 2, 8);
        let pool = ExecPool::new(2);
        let cfg = RunConfig::for_threads(2);
        let (blocked, _) = crate::kernel::score_image_batch(&image, &f, &pool, &cfg);
        for level in levels() {
            let (simd, _) = score_simd_batch(&image, &f, &pool, &cfg, level);
            assert_eq!(simd, blocked, "level {level:?}");
        }
    }

    #[test]
    fn nan_features_follow_scalar_semantics() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(6, 4, 3).with_depth(5), 13);
        let image = FlatImage::from_forest(&forest, 5).unwrap();
        let mut data = vec![0.4f32; 24 * 4];
        for (i, v) in data.iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = f32::NAN;
            }
        }
        let f = TabularFrame::from_rows(data, 4).unwrap();
        let pool = ExecPool::new(2);
        let cfg = RunConfig::for_threads(2);
        let (blocked, _) = crate::kernel::score_image_batch(&image, &f, &pool, &cfg);
        for level in levels() {
            let (simd, _) = score_simd_batch(&image, &f, &pool, &cfg, level);
            assert_eq!(simd, blocked, "level {level:?}");
        }
    }

    #[test]
    #[ignore = "timing probe, run manually with --release"]
    fn throughput_probe_128_trees_depth10() {
        use std::time::Instant;
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(128, 4, 3).with_depth(10),
            42,
        );
        let image = FlatImage::from_forest(&forest, 10).unwrap();
        let f = frame(100_000, 4, 1);
        let pool = ExecPool::new(1);
        let cfg = RunConfig::for_threads(1);
        let time = |label: &str, go: &dyn Fn() -> ()| {
            go(); // warm
            let t0 = Instant::now();
            go();
            let dt = t0.elapsed().as_secs_f64();
            println!("{label:>10}: {:>10.0} rec/s", 100_000.0 / dt);
        };
        time("blocked", &|| {
            crate::kernel::score_image_batch(&image, &f, &pool, &cfg);
        });
        for level in levels() {
            time(level.name(), &|| {
                score_simd_batch(&image, &f, &pool, &cfg, level);
            });
        }
        time("qs", &|| {
            crate::quickscorer::score_quickscorer_batch(&image, &f, &pool, &cfg);
        });
    }

    #[test]
    fn level_parse_and_detect_override() {
        assert_eq!(SimdLevel::parse("avx2"), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::parse("avx512"), Some(SimdLevel::Avx512));
        assert_eq!(SimdLevel::parse(" SSE2 "), Some(SimdLevel::Sse2));
        assert_eq!(SimdLevel::parse("portable"), Some(SimdLevel::Portable));
        assert_eq!(SimdLevel::parse("scalar"), Some(SimdLevel::Portable));
        assert_eq!(SimdLevel::parse("avx1024"), None);
        for l in levels() {
            assert_eq!(SimdLevel::parse(l.name()), Some(l));
        }
        // The override can only lower the tier.
        assert!(SimdLevel::detect() <= SimdLevel::supported());
    }
}
