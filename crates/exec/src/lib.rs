//! Persistent batch-scoring executor.
//!
//! The seed CPU backends spawned scoped threads on every `score()` call and
//! split rows into static `div_ceil` chunks. This crate replaces that with
//! a process-wide, spawn-once [`ExecPool`]: a work-stealing pool whose
//! workers park between calls, claim row ranges in cache-sized blocks from
//! per-worker deques, and steal half of a victim's remaining range when
//! their own deque runs dry. On top of the pool, [`kernel`] provides
//! blocked record×tree scoring kernels for the three forest
//! representations (pointer trees, the Fig. 4b flat layout, and the
//! quantized layout) with per-thread reusable vote scratch and a lockstep
//! multi-record traversal inner loop.
//!
//! Every kernel is bit-exact against the corresponding sequential
//! `score_one`/`predict_one` path: vote counts are commutative integer
//! adds, and regression sums accumulate in ascending tree order — the same
//! floating-point fold the sequential path performs.
//!
//! # Example
//!
//! ```
//! use mlscore_data::Dataset;
//! use mlscore_exec::{kernel, ExecPool, RunConfig};
//! use mlscore_forest::{FlatForest, ForestConfig, RandomForest};
//!
//! let forest = RandomForest::synthetic_full(
//!     &ForestConfig::classification(8, 4, 3).with_depth(6),
//!     11,
//! );
//! let flat = FlatForest::from_forest(&forest, 6).unwrap();
//! let data = Dataset::iris(200, 3).normalized();
//! let cfg = RunConfig::for_threads(4);
//! let (preds, report) = kernel::score_flat_batch(&flat, data.frame(), ExecPool::global(), &cfg);
//! assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
//! assert_eq!(report.rows(), 200);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod choice;
pub mod kernel;
pub mod kernel_simd;
pub mod pool;
pub mod quickscorer;
pub mod report;
pub mod stream;

pub use choice::{score_auto_batch, Kernel, KernelChoice};
pub use kernel::{
    fill_indexed, score_flat_batch, score_forest_batch, score_image_batch, score_quantized_batch,
    FlatImage, ImageLayout,
};
pub use kernel_simd::{score_simd_batch, SimdLevel};
pub use pool::{ExecPool, RunConfig};
pub use quickscorer::score_quickscorer_batch;
pub use report::{RunReport, WorkerReport};
pub use stream::{score_stream, ChunkRun, StreamReport};
