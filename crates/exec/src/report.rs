//! Wall-clock occupancy reports for one executor run.
//!
//! Everything in this module is *measured* time (`std::time`), not the
//! simulated time the cost models account in. The bridge between the two
//! is [`RunReport::record_spans`]: it replays the measured per-worker busy
//! intervals as [`Scope::Detail`] spans at a caller-chosen simulated
//! anchor, so a Perfetto trace of a simulated query can carry the real
//! pool occupancy underneath the modelled scoring span. Detail spans are
//! ignored by breakdown folds, so the modelled `Query`/`Offload`
//! accounting stays bit-exact.

use std::time::Duration;

use mlscore_sim::{SimDuration, SimInstant};
use mlscore_telemetry::{Scope, Tracer};

/// Per-worker measurements for one [`ExecPool::run`](crate::ExecPool::run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerReport {
    /// Rows this worker executed.
    pub rows: usize,
    /// Blocks this worker claimed.
    pub chunks: usize,
    /// Successful steals from other workers' deques.
    pub steals: usize,
    /// Total time spent inside the task closure.
    pub busy: Duration,
    /// Offset of the worker's first block start from the job start, or
    /// `None` if the worker never claimed a block.
    pub first_start: Option<Duration>,
    /// Offset of the worker's last block end from the job start.
    pub last_end: Duration,
}

impl WorkerReport {
    /// Fraction of the worker's active window spent inside the task.
    pub fn occupancy(&self) -> f64 {
        match self.first_start {
            Some(start) => {
                let window = self.last_end.saturating_sub(start);
                if window.is_zero() {
                    1.0
                } else {
                    self.busy.as_secs_f64() / window.as_secs_f64()
                }
            }
            None => 0.0,
        }
    }
}

/// Wall-clock summary of one executor run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    rows: usize,
    elapsed: Duration,
    workers: Vec<WorkerReport>,
}

impl RunReport {
    pub(crate) fn new(rows: usize, elapsed: Duration, workers: Vec<WorkerReport>) -> Self {
        Self {
            rows,
            elapsed,
            workers,
        }
    }

    pub(crate) fn empty() -> Self {
        Self::new(0, Duration::ZERO, Vec::new())
    }

    pub(crate) fn single(rows: usize, elapsed: Duration) -> Self {
        Self::new(
            rows,
            elapsed,
            vec![WorkerReport {
                rows,
                chunks: 1,
                steals: 0,
                busy: elapsed,
                first_start: Some(Duration::ZERO),
                last_end: elapsed,
            }],
        )
    }

    /// Rows the run executed.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Wall-clock duration of the whole run.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Measured throughput in rows per second (0 for an empty run).
    pub fn rows_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.rows as f64 / secs
        } else {
            0.0
        }
    }

    /// Per-worker measurements, indexed by worker id.
    pub fn workers(&self) -> &[WorkerReport] {
        &self.workers
    }

    /// Total steals across all workers.
    pub fn steals(&self) -> usize {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Records one wall-clock busy span per worker on `tracer`, anchored at
    /// the simulated instant `base` (1 ns of measured time maps to 1 ns of
    /// simulated time). Spans are [`Scope::Detail`] on lanes
    /// `process/worker{i}`, so Perfetto shows the pool's real occupancy
    /// without perturbing any breakdown fold.
    pub fn record_spans(&self, tracer: &Tracer, base: SimInstant, process: &str) {
        if !tracer.is_enabled() {
            return;
        }
        for (i, w) in self.workers.iter().enumerate() {
            let Some(first) = w.first_start else {
                continue;
            };
            let start = base + SimDuration::from_secs(first.as_secs_f64());
            tracer
                .span(format!("exec worker {i}"), start)
                .scope(Scope::Detail)
                .track(process, format!("worker{i}"))
                .meta("rows", w.rows.to_string())
                .meta("chunks", w.chunks.to_string())
                .meta("steals", w.steals.to_string())
                .meta("occupancy", format!("{:.3}", w.occupancy()))
                .finish(base + SimDuration::from_secs(w.last_end.as_secs_f64()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_of_idle_worker_is_zero() {
        let w = WorkerReport {
            rows: 0,
            chunks: 0,
            steals: 0,
            busy: Duration::ZERO,
            first_start: None,
            last_end: Duration::ZERO,
        };
        assert_eq!(w.occupancy(), 0.0);
    }

    #[test]
    fn single_report_is_fully_busy() {
        let r = RunReport::single(100, Duration::from_millis(10));
        assert_eq!(r.rows(), 100);
        assert_eq!(r.workers().len(), 1);
        assert!((r.workers()[0].occupancy() - 1.0).abs() < 1e-9);
        assert!(r.rows_per_sec() > 0.0);
        assert_eq!(r.steals(), 0);
    }

    #[test]
    fn record_spans_emits_detail_lanes() {
        let r = RunReport::new(
            10,
            Duration::from_millis(2),
            vec![
                WorkerReport {
                    rows: 6,
                    chunks: 2,
                    steals: 1,
                    busy: Duration::from_millis(1),
                    first_start: Some(Duration::ZERO),
                    last_end: Duration::from_millis(1),
                },
                WorkerReport {
                    rows: 0,
                    chunks: 0,
                    steals: 0,
                    busy: Duration::ZERO,
                    first_start: None,
                    last_end: Duration::ZERO,
                },
            ],
        );
        let tracer = Tracer::new();
        r.record_spans(&tracer, SimInstant::ZERO, "exec");
        let trace = tracer.take();
        // The idle worker records nothing.
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].scope, Scope::Detail);
        assert_eq!(trace.events()[0].name, "exec worker 0");
    }

    #[test]
    fn empty_report_records_nothing() {
        let tracer = Tracer::new();
        RunReport::empty().record_spans(&tracer, SimInstant::ZERO, "exec");
        assert!(tracer.take().is_empty());
    }
}
