//! Cross-kernel equivalence: the blocked image walker, the explicit-SIMD
//! lane walker at every tier the host supports, and the QuickScorer
//! bitvector kernel must be bit-exact with the sequential pointer-tree
//! reference — over the paper's dataset shapes (iris-like and
//! HIGGS-like), forest sizes {1, 8, 128}, batch-edge record counts
//! {0, 1, odd, LANES±1}, multiple pool widths, and the `MLSCORE_SIMD`
//! env-forced fallback tiers.

use std::sync::OnceLock;

use proptest::prelude::*;

use mlscore_data::{Dataset, TabularFrame};
use mlscore_exec::{
    kernel, score_quickscorer_batch, score_simd_batch, ExecPool, FlatImage, RunConfig, SimdLevel,
};
use mlscore_forest::{ForestConfig, Predictions, RandomForest};

/// Pool widths: serial, small, and wider than any sweep batch shard.
const THREADS: [usize; 3] = [1, 4, 13];

/// One pool per width, spawned once for the whole test binary.
fn pools() -> &'static [ExecPool] {
    static POOLS: OnceLock<Vec<ExecPool>> = OnceLock::new();
    POOLS.get_or_init(|| THREADS.into_iter().map(ExecPool::new).collect())
}

/// Every SIMD tier the host can actually run, weakest first.
fn levels() -> Vec<SimdLevel> {
    [
        SimdLevel::Portable,
        SimdLevel::Sse2,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ]
    .into_iter()
    .filter(|&l| l <= SimdLevel::supported())
    .collect()
}

/// Predictions as raw bits so regression outputs compare exactly.
fn bits(preds: &Predictions) -> Vec<u32> {
    match preds {
        Predictions::Classes(c) => c.clone(),
        Predictions::Values(v) => v.iter().map(|x| x.to_bits()).collect(),
    }
}

/// A frame in one of the paper's two shapes; `rows` may be zero.
fn shaped_frame(dataset: &str, rows: usize) -> TabularFrame {
    let n_features = if dataset == "iris" { 4 } else { 28 };
    if rows == 0 {
        return TabularFrame::from_rows(vec![], n_features).unwrap();
    }
    let data = if dataset == "iris" {
        Dataset::iris(rows, 3).normalized()
    } else {
        Dataset::higgs(rows, 3).normalized()
    };
    data.frame().clone()
}

/// Runs every kernel on `(forest, frame)` at every pool width and asserts
/// each one reproduces the sequential reference bit for bit.
fn assert_all_kernels_exact(forest: &RandomForest, frame: &TabularFrame, what: &str) {
    let image = FlatImage::from_forest(forest, forest.max_depth()).unwrap();
    let reference = bits(&forest.predict_batch(frame.as_slice()));
    for (pool, threads) in pools().iter().zip(THREADS) {
        let cfg = RunConfig::for_threads(threads);
        let (preds, _) = kernel::score_image_batch(&image, frame, pool, &cfg);
        assert_eq!(bits(&preds), reference, "{what}: blocked @{threads}th");
        for level in levels() {
            let (preds, _) = score_simd_batch(&image, frame, pool, &cfg, level);
            assert_eq!(
                bits(&preds),
                reference,
                "{what}: simd/{} @{threads}th",
                level.name()
            );
        }
        let (preds, _) = score_quickscorer_batch(&image, frame, pool, &cfg);
        assert_eq!(bits(&preds), reference, "{what}: quickscorer @{threads}th");
    }
}

/// The deterministic grid the issue names: {iris, higgs} shapes ×
/// {1, 8, 128} trees × batch-edge record counts, classification.
#[test]
fn grid_blocked_simd_quickscorer_bit_exact() {
    let record_counts = [0, 1, 37, kernel::LANES - 1, kernel::LANES + 1];
    for dataset in ["iris", "higgs"] {
        let (n_features, n_classes) = if dataset == "iris" { (4, 3) } else { (28, 2) };
        for trees in [1usize, 8, 128] {
            let forest = RandomForest::synthetic_full(
                &ForestConfig::classification(trees, n_features, n_classes).with_depth(6),
                11,
            );
            for records in record_counts {
                let frame = shaped_frame(dataset, records);
                let what = format!("{dataset} x{trees} trees @{records} records");
                assert_all_kernels_exact(&forest, &frame, &what);
            }
        }
    }
}

/// Regression forests go through different accumulation folds in every
/// kernel; they must still agree bit for bit.
#[test]
fn regression_kernels_bit_exact_at_batch_edges() {
    for trees in [1usize, 8] {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::regression(trees, 4).with_depth(6), 23);
        for records in [
            0,
            1,
            kernel::LANES - 1,
            kernel::LANES + 1,
            3 * kernel::LANES,
        ] {
            let frame = shaped_frame("iris", records);
            let what = format!("regression x{trees} trees @{records} records");
            assert_all_kernels_exact(&forest, &frame, &what);
        }
    }
}

/// `MLSCORE_SIMD` forces the fallback tiers: every forced level must (a)
/// actually take effect in [`SimdLevel::detect`], (b) never exceed the
/// hardware, and (c) stay bit-exact with the reference. This test owns
/// the env var; no other test in this binary reads it.
#[test]
fn env_forced_fallback_levels_stay_bit_exact() {
    let forest =
        RandomForest::synthetic_full(&ForestConfig::classification(8, 4, 3).with_depth(6), 31);
    let image = FlatImage::from_forest(&forest, forest.max_depth()).unwrap();
    let frame = shaped_frame("iris", 2 * kernel::LANES + 5);
    let reference = bits(&forest.predict_batch(frame.as_slice()));
    let pool = ExecPool::new(2);
    let cfg = RunConfig::for_threads(2);

    let hw = SimdLevel::supported();
    for forced in ["portable", "sse2", "avx2", "avx512"] {
        std::env::set_var("MLSCORE_SIMD", forced);
        let detected = SimdLevel::detect();
        // The override can only lower the tier, never raise it.
        assert!(detected <= hw, "forced {forced} exceeded hardware");
        assert_eq!(detected, SimdLevel::parse(forced).unwrap().min(hw));
        let (preds, _) = score_simd_batch(&image, &frame, &pool, &cfg, detected);
        assert_eq!(bits(&preds), reference, "forced {forced}");
    }
    // Unknown values are ignored, not errors.
    std::env::set_var("MLSCORE_SIMD", "quantum");
    assert_eq!(SimdLevel::detect(), hw);
    std::env::remove_var("MLSCORE_SIMD");
    assert_eq!(SimdLevel::detect(), hw);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random shapes: every kernel tier agrees with the sequential
    /// reference on classification forests, including vote ties (few
    /// trees and classes make them common) and NaN-free random frames.
    #[test]
    fn random_classification_all_kernels_agree(
        trees in 1usize..10,
        depth in 0usize..7,
        n_features in 2usize..6,
        n_classes in 2u32..4,
        rows in 0usize..50,
        model_seed in any::<u64>(),
    ) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(trees, n_features, n_classes).with_depth(depth),
            model_seed,
        );
        let data: Vec<f32> = (0..rows * n_features)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(model_seed)
                    .rotate_left(21);
                (h % 1000) as f32 / 1000.0
            })
            .collect();
        let frame = TabularFrame::from_rows(data, n_features).unwrap();
        let image = FlatImage::from_forest(&forest, forest.max_depth()).unwrap();
        let reference = bits(&forest.predict_batch(frame.as_slice()));
        let pool = &pools()[1];
        let cfg = RunConfig::for_threads(THREADS[1]);
        let (preds, _) = kernel::score_image_batch(&image, &frame, pool, &cfg);
        prop_assert_eq!(&bits(&preds), &reference);
        for level in levels() {
            let (preds, _) = score_simd_batch(&image, &frame, pool, &cfg, level);
            prop_assert_eq!(&bits(&preds), &reference, "simd/{}", level.name());
        }
        let (preds, _) = score_quickscorer_batch(&image, &frame, pool, &cfg);
        prop_assert_eq!(&bits(&preds), &reference);
    }
}
