//! Property tests: the parallel batch kernels are bit-exact with their
//! sequential references for every forest representation, across thread
//! counts (1, 2, 7, and the paper's 52), record/tree block sizes, both
//! tasks (including majority-vote tie-breaking), and degenerate batches
//! (empty and single-record frames).

use std::sync::OnceLock;

use proptest::prelude::*;

use mlscore_data::TabularFrame;
use mlscore_exec::{kernel, ExecPool, RunConfig};
use mlscore_forest::{FlatForest, ForestConfig, QuantScheme, QuantizedForest, RandomForest};

/// Thread counts exercised for every case: serial, small, odd (uneven
/// sharding), and the paper's 52-thread Xeon configuration.
const THREADS: [usize; 4] = [1, 2, 7, 52];

/// One pool per sweep width, spawned once for the whole test binary.
fn pools() -> &'static [ExecPool] {
    static POOLS: OnceLock<Vec<ExecPool>> = OnceLock::new();
    POOLS.get_or_init(|| THREADS.into_iter().map(ExecPool::new).collect())
}

/// Deterministic pseudo-random frame; `rows` may be zero.
fn frame(rows: usize, n_features: usize, seed: u64) -> TabularFrame {
    let data: Vec<f32> = (0..rows * n_features)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(seed)
                .rotate_left(17);
            (h % 1000) as f32 / 1000.0
        })
        .collect();
    TabularFrame::from_rows(data, n_features).unwrap()
}

/// Each pool paired with a matching-width run configuration.
fn sweep(
    record_block: usize,
    tree_block: usize,
) -> impl Iterator<Item = (&'static ExecPool, RunConfig)> {
    pools().iter().zip(THREADS).map(move |(pool, t)| {
        let cfg = RunConfig::for_threads(t)
            .with_record_block(record_block)
            .with_tree_block(tree_block);
        (pool, cfg)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Classification: both the flat lockstep kernel and the blocked
    /// pointer-tree kernel reproduce the sequential result exactly. Few
    /// trees and classes make vote ties common, so the shared
    /// lowest-class-id tie-break is genuinely exercised.
    #[test]
    fn classification_kernels_bit_exact(
        trees in 1usize..6,
        depth in 0usize..6,
        n_features in 2usize..6,
        n_classes in 2u32..4,
        rows in 0usize..34,
        record_block in 1usize..70,
        tree_block in 1usize..6,
        model_seed in any::<u64>(),
        data_seed in any::<u64>(),
    ) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(trees, n_features, n_classes).with_depth(depth),
            model_seed,
        );
        let flat = FlatForest::from_forest(&forest, forest.max_depth()).unwrap();
        let f = frame(rows, n_features, data_seed);
        let forest_ref = forest.predict_batch(f.as_slice());
        let flat_ref: Vec<u32> = f.rows().map(|r| flat.score_one(r) as u32).collect();
        for (pool, cfg) in sweep(record_block, tree_block) {
            let (preds, report) = kernel::score_forest_batch(&forest, &f, pool, &cfg);
            prop_assert_eq!(&preds, &forest_ref, "forest kernel, {} threads", cfg.threads);
            prop_assert_eq!(report.rows(), rows);
            let (preds, _) = kernel::score_flat_batch(&flat, &f, pool, &cfg);
            prop_assert_eq!(preds.as_classes().unwrap(), flat_ref.as_slice());
        }
    }

    /// Regression: parallel accumulation must reproduce the sequential
    /// `f32` fold bit for bit (compared via `to_bits`, not tolerance).
    #[test]
    fn regression_kernels_bit_exact(
        trees in 1usize..6,
        depth in 0usize..6,
        n_features in 2usize..5,
        rows in 0usize..30,
        record_block in 1usize..50,
        tree_block in 1usize..6,
        model_seed in any::<u64>(),
        data_seed in any::<u64>(),
    ) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::regression(trees, n_features).with_depth(depth),
            model_seed,
        );
        let flat = FlatForest::from_forest(&forest, forest.max_depth()).unwrap();
        let f = frame(rows, n_features, data_seed);
        let forest_ref: Vec<u32> = forest
            .predict_batch(f.as_slice())
            .as_values()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let flat_ref: Vec<u32> = f.rows().map(|r| flat.score_one(r).to_bits()).collect();
        for (pool, cfg) in sweep(record_block, tree_block) {
            let (preds, _) = kernel::score_forest_batch(&forest, &f, pool, &cfg);
            let got: Vec<u32> =
                preds.as_values().unwrap().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&got, &forest_ref);
            let (preds, _) = kernel::score_flat_batch(&flat, &f, pool, &cfg);
            let got: Vec<u32> =
                preds.as_values().unwrap().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&got, &flat_ref);
        }
    }

    /// Quantized forests: block-quantized parallel scoring matches the
    /// per-record `score_one` path exactly.
    #[test]
    fn quantized_kernel_bit_exact(
        trees in 1usize..6,
        depth in 1usize..6,
        n_features in 2usize..5,
        n_classes in 2u32..4,
        rows in 0usize..30,
        record_block in 1usize..50,
        model_seed in any::<u64>(),
        data_seed in any::<u64>(),
    ) {
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(trees, n_features, n_classes).with_depth(depth),
            model_seed,
        );
        let quant = QuantizedForest::from_forest(&forest, QuantScheme::unit(n_features)).unwrap();
        let f = frame(rows, n_features, data_seed);
        let reference: Vec<u32> = f.rows().map(|r| quant.score_one(r)).collect();
        for (pool, cfg) in sweep(record_block, 3) {
            let (preds, report) = kernel::score_quantized_batch(&quant, &f, pool, &cfg);
            prop_assert_eq!(&preds, &reference);
            prop_assert_eq!(report.rows(), rows);
        }
    }
}

/// Non-property spot checks for the batch edges proptest ranges reach only
/// probabilistically: exactly-empty and exactly-one-record frames at the
/// widest pool.
#[test]
fn empty_and_single_record_at_every_width() {
    let forest =
        RandomForest::synthetic_full(&ForestConfig::classification(3, 4, 3).with_depth(5), 99);
    let flat = FlatForest::from_forest(&forest, 5).unwrap();
    let empty = TabularFrame::from_rows(vec![], 4).unwrap();
    let one = frame(1, 4, 5);
    for (pool, threads) in pools().iter().zip(THREADS) {
        let cfg = RunConfig::for_threads(threads);
        let (preds, report) = kernel::score_flat_batch(&flat, &empty, pool, &cfg);
        assert!(preds.is_empty());
        assert_eq!(report.rows(), 0);
        let (preds, _) = kernel::score_forest_batch(&forest, &one, pool, &cfg);
        assert_eq!(preds, forest.predict_batch(one.as_slice()));
    }
}
