//! The admission queue: bounded capacity, shed policies, per-class
//! deadlines, and FIFO-preserving batch extraction for the coalescer.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use mlscore_sim::SimInstant;

use crate::request::{ClassSlo, QueryClass, ServeRequest};

/// What to do when a request arrives at a full queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Reject the arriving request (tail drop).
    #[default]
    RejectNew,
    /// Admit the arriving request and drop the oldest queued one (head
    /// drop — favors fresh requests whose deadlines are still far).
    DropOldest,
}

/// Admission-queue configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Maximum queued requests (`None`: unbounded).
    pub capacity: Option<usize>,
    /// Overflow behavior when `capacity` is reached.
    pub shed: ShedPolicy,
    /// SLOs for [`QueryClass::Interactive`].
    pub interactive: ClassSlo,
    /// SLOs for [`QueryClass::Analytical`].
    pub analytical: ClassSlo,
}

impl QueueConfig {
    /// The SLO record for a class.
    pub fn slo(&self, class: QueryClass) -> &ClassSlo {
        match class {
            QueryClass::Interactive => &self.interactive,
            QueryClass::Analytical => &self.analytical,
        }
    }
}

/// The outcome of offering a request to the queue.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// The request was queued.
    Admitted,
    /// The queue was full and [`ShedPolicy::RejectNew`] bounced the
    /// arriving request (returned for accounting).
    Rejected(ServeRequest),
    /// The queue was full and [`ShedPolicy::DropOldest`] evicted the
    /// oldest queued request (returned) to admit the arriving one.
    DroppedOldest(ServeRequest),
}

/// A FIFO admission queue with bounded capacity and lazy deadline expiry.
///
/// Arrival order is preserved: admission appends, extraction
/// ([`AdmissionQueue::take_batch`]) removes in queue order, so two requests
/// for the same model always dispatch in arrival order (the FIFO-within-
/// class guarantee — the coalescer may *steal* later same-model requests
/// past earlier other-model ones, but never reorders within a model).
#[derive(Debug, Clone, Default)]
pub struct AdmissionQueue {
    entries: VecDeque<ServeRequest>,
    config: QueueConfig,
}

impl AdmissionQueue {
    /// An empty queue under `config`.
    pub fn new(config: QueueConfig) -> Self {
        Self {
            entries: VecDeque::new(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.config
    }

    /// Queued requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queued requests in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = &ServeRequest> {
        self.entries.iter()
    }

    /// Offers a request; on overflow the shed policy decides who pays.
    pub fn offer(&mut self, request: ServeRequest) -> Admission {
        if let Some(capacity) = self.config.capacity {
            if self.entries.len() >= capacity {
                match self.config.shed {
                    ShedPolicy::RejectNew => return Admission::Rejected(request),
                    ShedPolicy::DropOldest => {
                        return match self.entries.pop_front() {
                            Some(oldest) => {
                                self.entries.push_back(request);
                                Admission::DroppedOldest(oldest)
                            }
                            // Zero capacity: nothing to evict, nothing fits.
                            None => Admission::Rejected(request),
                        };
                    }
                }
            }
        }
        self.entries.push_back(request);
        Admission::Admitted
    }

    /// Removes and returns every queued request whose class deadline has
    /// lapsed by `now` (waited strictly longer than
    /// [`ClassSlo::queue_deadline`]). Expiry is lazy: the engine calls this
    /// at each dispatch opportunity, which is the only time expiry can
    /// change an outcome.
    pub fn expire(&mut self, now: SimInstant) -> Vec<ServeRequest> {
        let mut expired = Vec::new();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        for request in std::mem::take(&mut self.entries) {
            let lapsed = self
                .config
                .slo(request.class)
                .queue_deadline
                .is_some_and(|deadline| now - request.arrival > deadline);
            if lapsed {
                expired.push(request);
            } else {
                kept.push_back(request);
            }
        }
        self.entries = kept;
        expired
    }

    /// How many requests and records a batch for `model` would contain
    /// right now, without removing anything: queued requests for `model`
    /// in FIFO order, capped at `max_requests` and (past the first
    /// request, which always fits) `max_records`.
    pub fn preview_batch(
        &self,
        model: usize,
        max_requests: usize,
        max_records: u64,
    ) -> (usize, u64) {
        let mut requests = 0usize;
        let mut records = 0u64;
        for r in &self.entries {
            if r.model != model {
                continue;
            }
            if requests >= max_requests || (requests > 0 && records + r.n_records > max_records) {
                break;
            }
            requests += 1;
            records += r.n_records;
        }
        (requests, records)
    }

    /// Removes and returns the batch [`AdmissionQueue::preview_batch`]
    /// described, preserving FIFO order among the taken requests and among
    /// the ones left behind.
    pub fn take_batch(
        &mut self,
        model: usize,
        max_requests: usize,
        max_records: u64,
    ) -> Vec<ServeRequest> {
        let (count, _) = self.preview_batch(model, max_requests, max_records);
        let mut taken = Vec::with_capacity(count);
        let mut kept = VecDeque::with_capacity(self.entries.len());
        for r in std::mem::take(&mut self.entries) {
            if taken.len() < count && r.model == model {
                taken.push(r);
            } else {
                kept.push_back(r);
            }
        }
        self.entries = kept;
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_sim::SimDuration;

    fn req(id: u64, model: usize, n_records: u64, arrival_ms: f64) -> ServeRequest {
        ServeRequest {
            id,
            class: QueryClass::of(n_records),
            model,
            n_records,
            arrival: SimInstant::ZERO + SimDuration::from_millis(arrival_ms),
            client: None,
        }
    }

    #[test]
    fn unbounded_queue_admits_everything() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        for i in 0..100 {
            assert_eq!(q.offer(req(i, 0, 10, 0.0)), Admission::Admitted);
        }
        assert_eq!(q.len(), 100);
        assert!(!q.is_empty());
    }

    #[test]
    fn reject_new_bounces_the_arrival() {
        let mut q = AdmissionQueue::new(QueueConfig {
            capacity: Some(2),
            ..QueueConfig::default()
        });
        q.offer(req(0, 0, 10, 0.0));
        q.offer(req(1, 0, 10, 0.0));
        let bounced = req(2, 0, 10, 1.0);
        assert_eq!(q.offer(bounced), Admission::Rejected(bounced));
        assert_eq!(q.len(), 2);
        assert_eq!(q.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1]);
    }

    #[test]
    fn drop_oldest_evicts_the_head() {
        let mut q = AdmissionQueue::new(QueueConfig {
            capacity: Some(2),
            shed: ShedPolicy::DropOldest,
            ..QueueConfig::default()
        });
        q.offer(req(0, 0, 10, 0.0));
        q.offer(req(1, 0, 10, 0.0));
        let evicted = q.offer(req(2, 0, 10, 1.0));
        assert_eq!(evicted, Admission::DroppedOldest(req(0, 0, 10, 0.0)));
        assert_eq!(q.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
        // Zero capacity degenerates to rejection (nothing to evict).
        let mut zero = AdmissionQueue::new(QueueConfig {
            capacity: Some(0),
            shed: ShedPolicy::DropOldest,
            ..QueueConfig::default()
        });
        assert!(matches!(
            zero.offer(req(9, 0, 10, 0.0)),
            Admission::Rejected(_)
        ));
    }

    #[test]
    fn expiry_is_per_class_and_strict() {
        let mut q = AdmissionQueue::new(QueueConfig {
            interactive: ClassSlo {
                queue_deadline: Some(SimDuration::from_millis(5.0)),
                latency_slo: None,
            },
            ..QueueConfig::default()
        });
        q.offer(req(0, 0, 10, 0.0)); // interactive, arrives at 0 ms
        q.offer(req(1, 0, 1_000_000, 0.0)); // analytical: no deadline
        q.offer(req(2, 0, 10, 4.0)); // interactive, arrives at 4 ms
                                     // At exactly the deadline nothing lapses (strict >)...
        assert!(q
            .expire(SimInstant::ZERO + SimDuration::from_millis(5.0))
            .is_empty());
        // ...just past it, only the 0 ms interactive arrival lapses.
        let expired = q.expire(SimInstant::ZERO + SimDuration::from_millis(5.1));
        assert_eq!(expired.iter().map(|r| r.id).collect::<Vec<_>>(), [0]);
        assert_eq!(q.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn batches_steal_same_model_requests_in_fifo_order() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.offer(req(0, 7, 10, 0.0));
        q.offer(req(1, 3, 10, 0.0));
        q.offer(req(2, 7, 20, 0.0));
        q.offer(req(3, 7, 30, 0.0));
        assert_eq!(q.preview_batch(7, 8, u64::MAX), (3, 60));
        let batch = q.take_batch(7, 8, u64::MAX);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 2, 3]);
        // The other model's request keeps its place.
        assert_eq!(q.iter().map(|r| r.id).collect::<Vec<_>>(), [1]);
    }

    #[test]
    fn batch_caps_bind_but_the_first_request_always_fits() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.offer(req(0, 1, 500, 0.0));
        q.offer(req(1, 1, 500, 0.0));
        q.offer(req(2, 1, 500, 0.0));
        // Request cap.
        assert_eq!(q.preview_batch(1, 2, u64::MAX), (2, 1_000));
        // Record cap stops before the third request.
        assert_eq!(q.preview_batch(1, 8, 1_000), (2, 1_000));
        // A single oversized request still forms a batch of one.
        let mut big = AdmissionQueue::new(QueueConfig::default());
        big.offer(req(0, 1, 1_000_000, 0.0));
        assert_eq!(big.preview_batch(1, 8, 100), (1, 1_000_000));
        assert_eq!(big.take_batch(1, 8, 100).len(), 1);
    }
}
