//! Model catalogs and arrival processes.
//!
//! The workload half of the serving simulation: *which* concrete models
//! queries reference (so the coalescer and artifact cache can key on real
//! bundle content hashes) and *when* queries arrive (open-loop Poisson,
//! closed-loop clients with think time, or everything-at-once batch).
//! Everything is seeded and draws from the vendored [`StdRng`]; no wall
//! clock anywhere.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlscore_forest::{ModelBundle, ModelStats, RandomForest};
use mlscore_sched::{paper_shape_forests, QueryTrace};
use mlscore_sim::{SimDuration, SimInstant};

use crate::error::ServeError;

/// The concrete models a workload's queries reference.
///
/// Each entry holds the forest (for functional scoring), its serialized
/// bundle (for content hashing and byte-size-driven compile costs), and its
/// shape statistics (for cost models and arbitration).
#[derive(Debug, Clone)]
pub struct ModelCatalog {
    forests: Vec<Arc<RandomForest>>,
    bundles: Vec<ModelBundle>,
    stats: Vec<ModelStats>,
}

impl ModelCatalog {
    /// Builds a catalog from explicit forests.
    pub fn from_forests(forests: Vec<RandomForest>) -> Self {
        let bundles: Vec<ModelBundle> = forests.iter().map(ModelBundle::serialize).collect();
        let stats: Vec<ModelStats> = forests.iter().map(ModelStats::of).collect();
        Self {
            forests: forests.into_iter().map(Arc::new).collect(),
            bundles,
            stats,
        }
    }

    /// The paper's 12-shape model grid ([`paper_shape_forests`]) — the same
    /// forests behind `QueryTrace::synthetic`, so a synthetic trace's shape
    /// index addresses this catalog directly.
    pub fn paper_mix() -> Self {
        Self::from_forests(paper_shape_forests())
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.forests.len()
    }

    /// Returns `true` if the catalog has no models.
    pub fn is_empty(&self) -> bool {
        self.forests.is_empty()
    }

    /// Shape statistics of model `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range — model indices come from
    /// [`WorkloadSpec::draws`] over this catalog's length.
    pub fn stats(&self, i: usize) -> &ModelStats {
        // analyze: allow(P001, reason="model indices are drawn modulo this catalog's length; a miss is an engine bug, not load")
        &self.stats[i]
    }

    /// The deserialized model `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (see [`ModelCatalog::stats`]).
    pub fn forest(&self, i: usize) -> &Arc<RandomForest> {
        // analyze: allow(P001, reason="model indices are drawn modulo this catalog's length; a miss is an engine bug, not load")
        &self.forests[i]
    }

    /// The serialized bundle of model `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (see [`ModelCatalog::stats`]).
    pub fn bundle(&self, i: usize) -> &ModelBundle {
        // analyze: allow(P001, reason="model indices are drawn modulo this catalog's length; a miss is an engine bug, not load")
        &self.bundles[i]
    }

    /// Serialized size of model `i`, in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (see [`ModelCatalog::stats`]).
    pub fn model_bytes(&self, i: usize) -> u64 {
        // analyze: allow(P001, reason="model indices are drawn modulo this catalog's length; a miss is an engine bug, not load")
        self.bundles[i].len() as u64
    }
}

/// When queries arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Every query is present at time zero, in trace order — the legacy
    /// `sched::trace` replay setting.
    Batch,
    /// Open loop: exponential interarrival times at the offered rate;
    /// arrivals do not react to system state (the overload-capable
    /// setting — queues can grow without bound).
    OpenPoisson {
        /// Offered load in queries per second.
        rate_qps: f64,
    },
    /// Closed loop: `clients` concurrent clients, each issuing its next
    /// query an exponential think time after its previous one completes
    /// (arrivals self-throttle to the system's speed).
    ClosedLoop {
        /// Concurrent clients.
        clients: usize,
        /// Mean think time between a completion and the client's next
        /// query.
        think: SimDuration,
    },
}

/// A complete workload: how many queries, which seed, and the arrival
/// process. The query *content* (model index, batch size) comes from
/// [`QueryTrace::synthetic_draws`] under the same seed, so a workload and a
/// stats-only trace with equal `(queries, seed)` carry the identical mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Total queries to issue.
    pub queries: usize,
    /// Master seed; query content and arrival times derive from it.
    pub seed: u64,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
}

/// Seed offset separating the arrival-time stream from the query-content
/// stream (content must match `QueryTrace::synthetic(queries, seed)`
/// exactly, so arrivals may not consume from the same RNG).
const ARRIVAL_STREAM: u64 = 0x5EED_AA77;
/// Seed offset for closed-loop think-time draws.
const THINK_STREAM: u64 = 0x7417_C0DE;

impl WorkloadSpec {
    /// The `(model index, batch size)` content of each query, in issue
    /// order.
    pub fn draws(&self, n_models: usize) -> Vec<(usize, u64)> {
        QueryTrace::synthetic_draws(self.queries, self.seed, n_models)
    }

    /// Checks that the specification is servable: an open Poisson process
    /// needs a positive finite rate, and a closed loop needs at least one
    /// client and a non-negative finite think time.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidWorkload`] describing the first
    /// problem found.
    pub fn validate(&self) -> Result<(), ServeError> {
        match self.arrivals {
            ArrivalProcess::Batch => Ok(()),
            ArrivalProcess::OpenPoisson { rate_qps } => {
                if rate_qps > 0.0 && rate_qps.is_finite() {
                    Ok(())
                } else {
                    Err(ServeError::workload(format!(
                        "Poisson rate must be positive and finite, got {rate_qps}"
                    )))
                }
            }
            ArrivalProcess::ClosedLoop { clients, think } => {
                if clients == 0 {
                    Err(ServeError::workload(
                        "a closed loop needs at least one client",
                    ))
                } else if !think.as_secs().is_finite() || think.as_secs() < 0.0 {
                    Err(ServeError::workload(format!(
                        "closed-loop think time must be finite and non-negative, got {} s",
                        think.as_secs()
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Arrival instants for the open processes, one per query, in issue
    /// order ([`ArrivalProcess::Batch`]: all zero;
    /// [`ArrivalProcess::OpenPoisson`]: cumulative exponential gaps).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidWorkload`] on a non-positive or
    /// non-finite Poisson rate, and on [`ArrivalProcess::ClosedLoop`],
    /// whose arrivals depend on completions and exist only inside the
    /// engine.
    pub fn open_arrival_times(&self) -> Result<Vec<SimInstant>, ServeError> {
        self.validate()?;
        match self.arrivals {
            ArrivalProcess::Batch => Ok(vec![SimInstant::ZERO; self.queries]),
            ArrivalProcess::OpenPoisson { rate_qps } => {
                let mut rng = StdRng::seed_from_u64(self.seed ^ ARRIVAL_STREAM);
                let mut t = SimInstant::ZERO;
                Ok((0..self.queries)
                    .map(|_| {
                        t += exponential(&mut rng, 1.0 / rate_qps);
                        t
                    })
                    .collect())
            }
            ArrivalProcess::ClosedLoop { .. } => Err(ServeError::workload(
                "closed-loop arrivals are completion-driven; the engine generates them",
            )),
        }
    }

    /// A fresh think-time RNG for closed-loop runs, decorrelated from the
    /// content and arrival streams.
    pub fn think_rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ THINK_STREAM)
    }
}

/// One exponential draw with the given mean.
pub fn exponential(rng: &mut StdRng, mean_secs: f64) -> SimDuration {
    let u: f64 = rng.gen(); // [0, 1)
    SimDuration::from_secs(-(1.0 - u).ln() * mean_secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_matches_the_trace_shapes() {
        let catalog = ModelCatalog::paper_mix();
        assert_eq!(catalog.len(), 12);
        assert!(!catalog.is_empty());
        let shapes: Vec<ModelStats> = paper_shape_forests().iter().map(ModelStats::of).collect();
        for i in 0..catalog.len() {
            assert_eq!(catalog.stats(i), &shapes[i]);
            assert_eq!(
                catalog.bundle(i).content_hash(),
                ModelBundle::serialize(catalog.forest(i)).content_hash(),
                "bundle must hash the stored forest"
            );
            assert!(catalog.model_bytes(i) > 0);
        }
    }

    #[test]
    fn draws_match_the_synthetic_trace() {
        let catalog = ModelCatalog::paper_mix();
        let spec = WorkloadSpec {
            queries: 40,
            seed: 17,
            arrivals: ArrivalProcess::Batch,
        };
        let draws = spec.draws(catalog.len());
        let trace = QueryTrace::synthetic(40, 17);
        for ((model, n_records), q) in draws.iter().zip(trace.queries()) {
            assert_eq!(catalog.stats(*model), &q.stats);
            assert_eq!(*n_records, q.n_records);
        }
    }

    #[test]
    fn batch_arrivals_are_all_at_zero() {
        let spec = WorkloadSpec {
            queries: 5,
            seed: 1,
            arrivals: ArrivalProcess::Batch,
        };
        assert_eq!(
            spec.open_arrival_times().unwrap(),
            vec![SimInstant::ZERO; 5]
        );
    }

    #[test]
    fn poisson_arrivals_are_increasing_and_rate_scaled() {
        let spec = |rate_qps| WorkloadSpec {
            queries: 2_000,
            seed: 3,
            arrivals: ArrivalProcess::OpenPoisson { rate_qps },
        };
        let slow = spec(10.0).open_arrival_times().unwrap();
        let fast = spec(100.0).open_arrival_times().unwrap();
        assert!(slow.windows(2).all(|w| w[0] <= w[1]));
        // Same seed, 10x the rate: the same exponential draws shrink 10x.
        let ratio = slow
            .last()
            .unwrap()
            .duration_since(SimInstant::ZERO)
            .as_secs()
            / fast
                .last()
                .unwrap()
                .duration_since(SimInstant::ZERO)
                .as_secs();
        assert!((9.99..10.01).contains(&ratio), "rate scaling ratio {ratio}");
        // The empirical mean gap sits near 1/rate.
        let mean_gap = slow
            .last()
            .unwrap()
            .duration_since(SimInstant::ZERO)
            .as_secs()
            / 2_000.0;
        assert!((0.08..0.12).contains(&mean_gap), "mean gap {mean_gap}");
    }

    #[test]
    fn arrival_and_content_streams_are_decorrelated() {
        let spec = WorkloadSpec {
            queries: 10,
            seed: 9,
            arrivals: ArrivalProcess::OpenPoisson { rate_qps: 50.0 },
        };
        // Same draws regardless of the arrival process...
        let batch = WorkloadSpec {
            arrivals: ArrivalProcess::Batch,
            ..spec
        };
        assert_eq!(spec.draws(12), batch.draws(12));
        // ...and deterministic arrival times.
        assert_eq!(
            spec.open_arrival_times().unwrap(),
            spec.open_arrival_times().unwrap()
        );
    }

    #[test]
    fn closed_loop_has_no_open_arrival_times() {
        let err = WorkloadSpec {
            queries: 4,
            seed: 0,
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 2,
                think: SimDuration::from_millis(1.0),
            },
        }
        .open_arrival_times()
        .unwrap_err();
        assert!(format!("{err}").contains("completion-driven"), "{err}");
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        let spec = |arrivals| WorkloadSpec {
            queries: 4,
            seed: 0,
            arrivals,
        };
        for arrivals in [
            ArrivalProcess::OpenPoisson { rate_qps: 0.0 },
            ArrivalProcess::OpenPoisson { rate_qps: -3.0 },
            ArrivalProcess::OpenPoisson {
                rate_qps: f64::INFINITY,
            },
            ArrivalProcess::OpenPoisson { rate_qps: f64::NAN },
            ArrivalProcess::ClosedLoop {
                clients: 0,
                think: SimDuration::from_millis(1.0),
            },
        ] {
            let err = spec(arrivals).validate().unwrap_err();
            assert!(
                matches!(err, ServeError::InvalidWorkload { .. }),
                "{arrivals:?} must be rejected, got {err:?}"
            );
        }
        assert!(spec(ArrivalProcess::Batch).validate().is_ok());
        assert!(spec(ArrivalProcess::OpenPoisson { rate_qps: 50.0 })
            .validate()
            .is_ok());
    }
}
