//! `mlscore-serve`: a deterministic discrete-event serving engine over the
//! scoring backends.
//!
//! The legacy replay loop scored a trace back to back on one device at a
//! time; real DBMS scoring endpoints face *load*: requests arrive on their
//! own clock, queue behind a bounded admission buffer, merge into
//! micro-batches when they target the same compiled model, and contend
//! for a small set of physical devices. This crate models that regime in
//! simulated time ([`mlscore_sim::SimInstant`]) so every run is exactly
//! reproducible:
//!
//! - [`WorkloadSpec`] / [`ArrivalProcess`] — batch, open-loop Poisson, and
//!   closed-loop arrival generators over the paper query mix.
//! - [`AdmissionQueue`] / [`QueueConfig`] — bounded capacity, shed
//!   policies ([`ShedPolicy`]), and per-class deadlines ([`ClassSlo`]).
//! - [`CoalesceConfig`] / [`score_merged`] — micro-batch coalescing of
//!   same-model requests into one device pass, bit-exact on split.
//! - [`DeviceRoster`] — the contention topology: exclusive FPGA, GPU
//!   streams, CPU executor seats.
//! - [`ServeEngine`] — the event loop tying it together, emitting
//!   telemetry spans and a [`ServingReport`] with throughput, latency
//!   percentiles, utilization, batch-size distribution, and shed counts.
//!
//! ```
//! use mlscore_sched::paper_backends;
//! use mlscore_serve::{
//!     ArrivalProcess, ModelCatalog, ServeConfig, ServeEngine, WorkloadSpec,
//! };
//! use mlscore_telemetry::Tracer;
//!
//! let engine = ServeEngine::new(
//!     paper_backends(),
//!     ModelCatalog::paper_mix(),
//!     ServeConfig::default(),
//! );
//! let spec = WorkloadSpec {
//!     queries: 20,
//!     seed: 1,
//!     arrivals: ArrivalProcess::OpenPoisson { rate_qps: 100.0 },
//! };
//! let report = engine.run(&spec, &Tracer::disabled()).expect("servable spec");
//! assert!(report.is_conserved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesce;
pub mod device;
pub mod engine;
pub mod error;
pub mod journal;
pub mod queue;
pub mod report;
pub mod request;
pub mod slo;
pub mod workload;

pub use coalesce::{score_merged, score_merged_stream, CoalesceConfig};
pub use device::{DeviceRoster, DeviceSpec};
pub use engine::{ServeConfig, ServeEngine, ServePolicy};
pub use error::ServeError;
pub use journal::{JournalEntry, JournalKind, RequestJournal, ShedReason};
pub use queue::{Admission, AdmissionQueue, QueueConfig, ShedPolicy};
pub use report::{ClassReport, DeviceReport, DispatchRecord, ServingReport};
pub use request::{ClassSlo, QueryClass, RequestId, ServeRequest, ANALYTICAL_MIN_RECORDS};
pub use slo::{ObserveConfig, SloAlert, SloMonitor};
pub use workload::{exponential, ArrivalProcess, ModelCatalog, WorkloadSpec};
