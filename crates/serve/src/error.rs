//! The serving crate's error type.
//!
//! A malformed workload is *load*, not a bug: a serving endpoint must
//! refuse it with a description instead of panicking. Everything the
//! engine can reject at run time funnels through [`ServeError`].

use std::error::Error;
use std::fmt;

use mlscore_backend::BackendError;

/// Errors a serving run (or a coalesced functional pass) can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The workload specification cannot be served as written (for
    /// example, a non-positive Poisson rate or a closed loop with zero
    /// clients).
    InvalidWorkload {
        /// What is wrong with the specification.
        reason: String,
    },
    /// A coalesced pass was handed zero frames to merge.
    EmptyBatch,
    /// A functional scoring call inside the serving path failed.
    Backend(BackendError),
}

impl ServeError {
    /// Convenience constructor for [`ServeError::InvalidWorkload`].
    pub fn workload(reason: impl Into<String>) -> Self {
        ServeError::InvalidWorkload {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidWorkload { reason } => {
                write!(f, "invalid workload: {reason}")
            }
            ServeError::EmptyBatch => write!(f, "a merged pass needs at least one frame"),
            ServeError::Backend(e) => write!(f, "scoring failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BackendError> for ServeError {
    fn from(e: BackendError) -> Self {
        ServeError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::workload("Poisson rate must be positive");
        assert!(format!("{e}").contains("Poisson rate"));
        assert!(e.source().is_none());
        let e: ServeError = BackendError::unsupported("FPGA", "too deep").into();
        assert!(e.source().is_some());
        assert_eq!(e, e.clone());
        assert!(format!("{}", ServeError::EmptyBatch).contains("at least one frame"));
    }
}
