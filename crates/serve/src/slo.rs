//! Windowed SLO monitoring: per-class attainment and error-budget burn
//! rate over the run's time series, with alert events when a class burns
//! budget faster than the configured threshold.
//!
//! Attainment in a window is the fraction of that window's completions
//! that met the class latency SLO. The *burn rate* normalizes the miss
//! fraction by the error budget the target leaves: with a 99% target the
//! budget is 1%, so a window missing 3% of its completions burns at 3×.
//! Sustained burn above 1× exhausts the budget before the period ends;
//! the default threshold of 2× flags windows that are clearly on fire
//! without alerting on single stray misses.

use mlscore_sim::{SimDuration, SimInstant};
use mlscore_telemetry::TimeSeriesRecorder;

/// Observability configuration for a serving run: how metrics windows
/// rotate and when SLO alerts fire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObserveConfig {
    /// Length of one metrics window in simulated time.
    pub window: SimDuration,
    /// Latency-SLO attainment target in `(0, 1)`; the error budget is
    /// `1 - slo_target`.
    pub slo_target: f64,
    /// Burn-rate multiple above which a window raises an alert.
    pub burn_threshold: f64,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        Self {
            window: SimDuration::from_millis(100.0),
            slo_target: 0.99,
            burn_threshold: 2.0,
        }
    }
}

/// One SLO alert: a class burned error budget faster than the threshold
/// during one metrics window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// Index of the offending window.
    pub window: u64,
    /// When that window starts.
    pub at: SimInstant,
    /// The query class burning budget.
    pub class: String,
    /// Attainment in the window, in `[0, 1]`.
    pub attainment: f64,
    /// `(1 - attainment) / (1 - slo_target)` — budget-burn multiple.
    pub burn_rate: f64,
}

/// Scans a finished run's time series for budget-burn alerts.
///
/// A post-hoc scan (rather than an online monitor) keeps the engine's
/// event loop untouched and is equivalent in simulated time: windows are
/// complete by the time the run ends, so the alert set is identical.
#[derive(Debug, Clone, Copy)]
pub struct SloMonitor;

impl SloMonitor {
    /// Returns every `(window, class)` whose burn rate exceeds
    /// `config.burn_threshold`, in window order then class order.
    ///
    /// Windows without completions for a class never alert (attainment is
    /// vacuously 1), and a target of 1.0 or more leaves no budget to
    /// meter, so no alerts fire either.
    pub fn scan(series: &TimeSeriesRecorder, config: ObserveConfig) -> Vec<SloAlert> {
        let budget = 1.0 - config.slo_target;
        if budget <= 0.0 {
            return Vec::new();
        }
        let mut alerts = Vec::new();
        for (index, window) in series.windows() {
            for (class, slice) in &window.classes {
                if slice.completions == 0 {
                    continue;
                }
                let attainment = slice.attainment();
                let burn_rate = (1.0 - attainment) / budget;
                if burn_rate > config.burn_threshold {
                    alerts.push(SloAlert {
                        window: index,
                        at: series.window_start(index),
                        class: class.clone(),
                        attainment,
                        burn_rate,
                    });
                }
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at_ms(v: f64) -> SimInstant {
        SimInstant::ZERO + ms(v)
    }

    fn config() -> ObserveConfig {
        ObserveConfig {
            window: ms(100.0),
            slo_target: 0.9, // 10% budget
            burn_threshold: 2.0,
        }
    }

    #[test]
    fn burning_windows_alert_and_healthy_ones_do_not() {
        let mut series = TimeSeriesRecorder::new(ms(100.0));
        // Window 0: 1 of 4 violated -> burn 2.5x > 2x.
        for violated in [true, false, false, false] {
            series.record_completion(at_ms(10.0), "interactive", ms(1.0), violated);
        }
        // Window 1: all met -> burn 0.
        series.record_completion(at_ms(110.0), "interactive", ms(1.0), false);
        let alerts = SloMonitor::scan(&series, config());
        assert_eq!(alerts.len(), 1);
        let alert = &alerts[0];
        assert_eq!(alert.window, 0);
        assert_eq!(alert.class, "interactive");
        assert!((alert.attainment - 0.75).abs() < 1e-12);
        assert!((alert.burn_rate - 2.5).abs() < 1e-12);
        assert_eq!(alert.at, SimInstant::ZERO);
    }

    #[test]
    fn empty_windows_and_exhausted_budgets_never_alert() {
        let mut series = TimeSeriesRecorder::new(ms(100.0));
        series.record_arrival(at_ms(5.0), "interactive"); // no completions
        assert!(SloMonitor::scan(&series, config()).is_empty());

        series.record_completion(at_ms(10.0), "interactive", ms(1.0), true);
        let no_budget = ObserveConfig {
            slo_target: 1.0,
            ..config()
        };
        assert!(SloMonitor::scan(&series, no_budget).is_empty());
    }

    #[test]
    fn alerts_come_out_in_window_then_class_order() {
        let mut series = TimeSeriesRecorder::new(ms(100.0));
        series.record_completion(at_ms(110.0), "interactive", ms(1.0), true);
        series.record_completion(at_ms(10.0), "analytical", ms(1.0), true);
        series.record_completion(at_ms(10.0), "interactive", ms(1.0), true);
        let alerts = SloMonitor::scan(&series, config());
        let keys: Vec<(u64, &str)> = alerts
            .iter()
            .map(|a| (a.window, a.class.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![(0, "analytical"), (0, "interactive"), (1, "interactive")]
        );
    }
}
