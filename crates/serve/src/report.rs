//! What a serving run produces: conservation counters, latency
//! distributions, device utilization, batch-size distribution, cache
//! behavior, and the per-dispatch log the property tests audit.

use std::collections::BTreeMap;

use mlscore_backend::CacheStats;
use mlscore_sim::{SimDuration, SimInstant};
use mlscore_telemetry::{Histogram, TimeSeriesRecorder};

use crate::journal::RequestJournal;
use crate::request::{QueryClass, RequestId};
use crate::slo::SloAlert;

/// Per-class slice of the outcome.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// The class.
    pub class: QueryClass,
    /// Completions.
    pub completed: u64,
    /// Requests of this class bounced at a full queue.
    pub rejected: u64,
    /// Requests of this class evicted by `ShedPolicy::DropOldest`.
    pub dropped: u64,
    /// Requests shed by queue-deadline expiry.
    pub timed_out: u64,
    /// Completions that exceeded the class's latency SLO.
    pub slo_violations: u64,
    /// Sojourn-latency distribution (arrival to completion).
    pub latency: Histogram,
}

impl ClassReport {
    /// Requests of this class shed for any reason.
    pub fn shed(&self) -> u64 {
        self.rejected + self.dropped + self.timed_out
    }

    /// Fraction of completions that met the latency SLO (`1.0` with no
    /// completions — no budget was burned).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            1.0 - self.slo_violations as f64 / self.completed as f64
        }
    }
}

/// Busy accounting for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device name.
    pub name: String,
    /// Concurrent-pass slots.
    pub slots: usize,
    /// Passes the device ran.
    pub passes: u64,
    /// Slot-seconds of busy time.
    pub busy: SimDuration,
    /// Busy fraction of `slots x makespan`, in `[0, 1]`.
    pub utilization: f64,
}

/// One request's dispatch, in dispatch order — the audit trail for the
/// FIFO-within-class property.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchRecord {
    /// The request.
    pub id: RequestId,
    /// Its class.
    pub class: QueryClass,
    /// Its model (catalog index).
    pub model: usize,
    /// The backend that served its batch.
    pub backend: String,
    /// Which device pass (engine-global batch sequence number) carried it.
    pub batch: u64,
    /// When its batch started on the device.
    pub dispatched_at: SimInstant,
}

/// The full outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Requests the workload offered.
    pub offered: u64,
    /// Requests the queue admitted.
    pub admitted: u64,
    /// Requests scored to completion.
    pub completed: u64,
    /// Requests bounced at a full queue (`ShedPolicy::RejectNew`).
    pub rejected: u64,
    /// Queued requests evicted by `ShedPolicy::DropOldest`.
    pub dropped: u64,
    /// Queued requests shed by class deadline expiry.
    pub timed_out: u64,
    /// Requests no backend in the roster supports.
    pub unservable: u64,
    /// Records actually scored (completed requests only).
    pub records_scored: u64,
    /// Simulated time from the first arrival to the last completion event.
    pub makespan: SimDuration,
    /// Device passes executed.
    pub batches: u64,
    /// Passes that merged more than one request.
    pub coalesced_batches: u64,
    /// Batch-size distribution: requests-per-pass -> passes.
    pub batch_sizes: BTreeMap<usize, u64>,
    /// Overall sojourn-latency distribution.
    pub latency: Histogram,
    /// Per-class slices, in `QueryClass::all()` order.
    pub classes: Vec<ClassReport>,
    /// Completed requests per backend name.
    pub picks: BTreeMap<String, u64>,
    /// Per-device accounting, in roster order.
    pub devices: Vec<DeviceReport>,
    /// Artifact-cache counters from the compile model (all zero when
    /// compile charging is off).
    pub cache: CacheStats,
    /// The final measured queries-per-compile arbitration used.
    pub expected_reuse: u64,
    /// Every dispatched request, in dispatch order.
    pub dispatches: Vec<DispatchRecord>,
    /// Windowed time series of the run's metrics.
    pub series: TimeSeriesRecorder,
    /// The request-lifecycle journal.
    pub journal: RequestJournal,
    /// SLO budget-burn alerts, in window-then-class order.
    pub alerts: Vec<SloAlert>,
}

impl ServingReport {
    /// Completed queries per second of makespan (0 for an empty run).
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.makespan.as_secs()
        }
    }

    /// Scored records per second of makespan.
    pub fn records_per_sec(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.records_scored as f64 / self.makespan.as_secs()
        }
    }

    /// Requests shed for any reason (rejected + dropped + timed out).
    pub fn shed(&self) -> u64 {
        self.rejected + self.dropped + self.timed_out
    }

    /// Largest number of requests merged into one pass (0 for no passes).
    pub fn max_batch(&self) -> usize {
        self.batch_sizes.keys().next_back().copied().unwrap_or(0)
    }

    /// Mean requests per pass (0 for no passes).
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }

    /// The class slice for `class`.
    ///
    /// # Panics
    ///
    /// Panics if the report is missing the class (never true for
    /// engine-produced reports).
    pub fn class(&self, class: QueryClass) -> &ClassReport {
        self.classes
            .iter()
            .find(|c| c.class == class)
            // analyze: allow(P001, reason="documented panic: the engine emits one ClassReport per QueryClass::all() entry; absence is a construction bug, not load")
            .expect("engine reports carry every class")
    }

    /// Checks the request-conservation invariant: every offered request is
    /// accounted for exactly once as completed, rejected, dropped, timed
    /// out, or unservable; admission splits offered against rejected; and
    /// the per-class slices sum back to every global counter they shard.
    pub fn is_conserved(&self) -> bool {
        let sum = |f: fn(&ClassReport) -> u64| self.classes.iter().map(f).sum::<u64>();
        self.offered == self.admitted + self.rejected
            && self.admitted == self.completed + self.dropped + self.timed_out + self.unservable
            && self.completed == self.dispatches.len() as u64
            && self.completed == self.picks.values().sum::<u64>()
            && self.batch_sizes.values().sum::<u64>() == self.batches
            && self
                .batch_sizes
                .iter()
                .map(|(size, n)| *size as u64 * n)
                .sum::<u64>()
                == self.completed
            && sum(|c| c.completed) == self.completed
            && sum(|c| c.rejected) == self.rejected
            && sum(|c| c.dropped) == self.dropped
            && sum(|c| c.timed_out) == self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> ServingReport {
        ServingReport {
            offered: 0,
            admitted: 0,
            completed: 0,
            rejected: 0,
            dropped: 0,
            timed_out: 0,
            unservable: 0,
            records_scored: 0,
            makespan: SimDuration::ZERO,
            batches: 0,
            coalesced_batches: 0,
            batch_sizes: BTreeMap::new(),
            latency: Histogram::new(),
            classes: QueryClass::all()
                .into_iter()
                .map(|class| ClassReport {
                    class,
                    completed: 0,
                    rejected: 0,
                    dropped: 0,
                    timed_out: 0,
                    slo_violations: 0,
                    latency: Histogram::new(),
                })
                .collect(),
            picks: BTreeMap::new(),
            devices: Vec::new(),
            cache: CacheStats::default(),
            expected_reuse: 1,
            dispatches: Vec::new(),
            series: TimeSeriesRecorder::new(SimDuration::from_millis(100.0)),
            journal: RequestJournal::new(),
            alerts: Vec::new(),
        }
    }

    #[test]
    fn empty_report_is_conserved_with_zero_rates() {
        let r = empty_report();
        assert!(r.is_conserved());
        assert_eq!(r.throughput_qps(), 0.0);
        assert_eq!(r.records_per_sec(), 0.0);
        assert_eq!(r.shed(), 0);
        assert_eq!(r.max_batch(), 0);
        assert_eq!(r.mean_batch(), 0.0);
    }

    #[test]
    fn conservation_catches_a_lost_request() {
        let mut r = empty_report();
        r.offered = 3;
        r.admitted = 2;
        r.rejected = 1;
        r.completed = 1; // one admitted request vanished
        assert!(!r.is_conserved());
    }

    #[test]
    fn conservation_catches_unattributed_shed_classes() {
        let mut r = empty_report();
        r.offered = 1;
        r.admitted = 0;
        r.rejected = 1; // globally counted, but no class owns it
        assert!(!r.is_conserved());
        r.classes[0].rejected = 1;
        assert!(r.is_conserved());
    }

    #[test]
    fn class_shed_and_attainment_derive_from_counters() {
        let mut c = empty_report().classes[0].clone();
        assert_eq!(c.shed(), 0);
        assert_eq!(c.attainment(), 1.0);
        c.rejected = 2;
        c.dropped = 1;
        c.timed_out = 3;
        assert_eq!(c.shed(), 6);
        c.completed = 4;
        c.slo_violations = 1;
        assert_eq!(c.attainment(), 0.75);
    }

    #[test]
    fn batch_stats_derive_from_the_distribution() {
        let mut r = empty_report();
        r.offered = 5;
        r.admitted = 5;
        r.completed = 5;
        r.classes[0].completed = 5;
        r.batches = 2;
        r.batch_sizes.insert(1, 1);
        r.batch_sizes.insert(4, 1);
        r.picks.insert("FPGA".to_string(), 5);
        r.dispatches = (0..5)
            .map(|id| DispatchRecord {
                id,
                class: QueryClass::Interactive,
                model: 0,
                backend: "FPGA".to_string(),
                batch: u64::from(id > 0),
                dispatched_at: SimInstant::ZERO,
            })
            .collect();
        r.makespan = SimDuration::from_secs(2.0);
        assert!(r.is_conserved());
        assert_eq!(r.max_batch(), 4);
        assert_eq!(r.mean_batch(), 2.5);
        assert_eq!(r.throughput_qps(), 2.5);
    }
}
