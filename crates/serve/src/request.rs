//! Requests, query classes, and per-class SLOs.

use serde::{Deserialize, Serialize};

use mlscore_sim::{SimDuration, SimInstant};

/// Engine-assigned request identifier, dense and increasing in arrival
/// order (ties broken by arrival-event order), so id order *is* arrival
/// order.
pub type RequestId = u64;

/// Batch size at or above which a query counts as analytical.
pub const ANALYTICAL_MIN_RECORDS: u64 = 10_000;

/// The two service classes the admission queue distinguishes — the paper's
/// Fig. 1 regimes: small interactive lookups with tight latency
/// expectations, and large analytical scans that tolerate queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// Small batch; latency-sensitive.
    Interactive,
    /// Large scan ([`ANALYTICAL_MIN_RECORDS`] records or more);
    /// throughput-oriented.
    Analytical,
}

impl QueryClass {
    /// Classifies a batch size.
    pub fn of(n_records: u64) -> Self {
        if n_records >= ANALYTICAL_MIN_RECORDS {
            QueryClass::Analytical
        } else {
            QueryClass::Interactive
        }
    }

    /// Stable lowercase name (used for telemetry lanes and JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Interactive => "interactive",
            QueryClass::Analytical => "analytical",
        }
    }

    /// Both classes, in report order.
    pub fn all() -> [QueryClass; 2] {
        [QueryClass::Interactive, QueryClass::Analytical]
    }
}

/// Per-class service-level objectives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassSlo {
    /// Maximum time a request may sit in the admission queue before the
    /// engine sheds it as timed out (`None`: wait forever).
    pub queue_deadline: Option<SimDuration>,
    /// Target end-to-end (sojourn) latency; completions above it count as
    /// SLO violations in the report (`None`: untracked).
    pub latency_slo: Option<SimDuration>,
}

/// One scoring request inside the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeRequest {
    /// Engine-assigned id (arrival order).
    pub id: RequestId,
    /// Service class, derived from `n_records`.
    pub class: QueryClass,
    /// Index into the engine's model catalog — the coalescing key resolves
    /// through this to the bundle's content hash.
    pub model: usize,
    /// Records to score.
    pub n_records: u64,
    /// When the request entered the system.
    pub arrival: SimInstant,
    /// Closed-loop client that issued the request, if any.
    pub client: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_by_batch_size() {
        assert_eq!(QueryClass::of(1), QueryClass::Interactive);
        assert_eq!(
            QueryClass::of(ANALYTICAL_MIN_RECORDS - 1),
            QueryClass::Interactive
        );
        assert_eq!(
            QueryClass::of(ANALYTICAL_MIN_RECORDS),
            QueryClass::Analytical
        );
        assert_eq!(QueryClass::of(1_000_000), QueryClass::Analytical);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(QueryClass::Interactive.name(), "interactive");
        assert_eq!(QueryClass::Analytical.name(), "analytical");
        assert_eq!(
            QueryClass::all().map(|c| c.name()),
            ["interactive", "analytical"]
        );
    }
}
