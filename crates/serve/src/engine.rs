//! The discrete-event serving engine.
//!
//! One event loop, simulated time only: arrivals enter the admission
//! queue, dispatch opportunities (arrivals, device completions, hold
//! expiries) pull FIFO batches of same-model requests off the queue, an
//! eligibility-masked arbitration picks the backend whose device has a
//! free slot and whose amortized cost is lowest, and a
//! [`DeviceLedger`] per device serializes the passes. Every duration is a
//! cost-model output — the engine never calls a wall clock, so a run is a
//! pure function of `(workload, config)`.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use rand::rngs::StdRng;

use mlscore_backend::{artifact_key, ArtifactKey, CacheStats, ScoringBackend};
use mlscore_forest::ModelStats;
use mlscore_pipeline::PipelineParams;
use mlscore_sched::{choose_amortized_eligible, AdaptiveScheduler, Choice};
use mlscore_sim::{DeviceLedger, SimDuration, SimInstant, StageClass};
use mlscore_telemetry::{Histogram, TimeSeriesRecorder, Tracer};

use crate::coalesce::CoalesceConfig;
use crate::device::DeviceRoster;
use crate::error::ServeError;
use crate::journal::{JournalKind, RequestJournal, ShedReason};
use crate::queue::{Admission, AdmissionQueue, QueueConfig};
use crate::report::{ClassReport, DeviceReport, DispatchRecord, ServingReport};
use crate::request::{QueryClass, RequestId, ServeRequest};
use crate::slo::{ObserveConfig, SloMonitor};
use crate::workload::{exponential, ArrivalProcess, ModelCatalog, WorkloadSpec};

/// How dispatch picks a backend for each batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServePolicy {
    /// Arbitrate on the backends' own cost models
    /// ([`choose_amortized_eligible`]) — the planning upper bound.
    Oracle,
    /// Arbitrate on an online [`AdaptiveScheduler`] that learns costs from
    /// the runs it dispatches (`alpha` is its smoothing factor).
    Adaptive {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Admission-queue capacity, shed policy, and per-class SLOs.
    pub queue: QueueConfig,
    /// Micro-batch coalescing.
    pub coalesce: CoalesceConfig,
    /// Dispatch arbitration.
    pub policy: ServePolicy,
    /// Concurrent passes on the shared CPU device (executor-pool seats).
    pub cpu_seats: usize,
    /// Concurrent passes on the shared GPU device (streams).
    pub gpu_streams: usize,
    /// Replace the whole topology with one single-slot device shared by
    /// every backend — the legacy-replay equivalence mode.
    pub serial_device: bool,
    /// Model compile charging: on a simulated artifact-cache miss a pass
    /// additionally pays `PipelineParams::model_preprocess_time`, on a hit
    /// `PipelineParams::cache_lookup`. Off, compiles are free and the
    /// cache model is bypassed entirely.
    pub charge_compile: bool,
    /// Capacity of the simulated artifact cache (compiled artifacts
    /// resident across all backends), when `charge_compile` is on.
    pub cache_entries: usize,
    /// Metrics-window length and SLO alerting thresholds.
    pub observe: ObserveConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue: QueueConfig::default(),
            coalesce: CoalesceConfig::default(),
            policy: ServePolicy::Oracle,
            cpu_seats: mlscore_exec::pool::default_threads(),
            gpu_streams: 4,
            serial_device: false,
            charge_compile: true,
            cache_entries: 32,
            observe: ObserveConfig::default(),
        }
    }
}

/// The serving engine: a backend roster, a model catalog, and a
/// configuration, run against workloads.
///
/// # Example
///
/// ```
/// use mlscore_sched::paper_backends;
/// use mlscore_serve::{
///     ArrivalProcess, ModelCatalog, ServeConfig, ServeEngine, WorkloadSpec,
/// };
/// use mlscore_telemetry::Tracer;
///
/// let engine = ServeEngine::new(
///     paper_backends(),
///     ModelCatalog::paper_mix(),
///     ServeConfig::default(),
/// );
/// let spec = WorkloadSpec {
///     queries: 30,
///     seed: 7,
///     arrivals: ArrivalProcess::OpenPoisson { rate_qps: 50.0 },
/// };
/// let report = engine.run(&spec, &Tracer::disabled()).expect("servable spec");
/// assert!(report.is_conserved());
/// assert_eq!(report.completed + report.shed() + report.unservable, 30);
/// ```
pub struct ServeEngine {
    backends: Vec<Box<dyn ScoringBackend>>,
    catalog: ModelCatalog,
    config: ServeConfig,
    params: PipelineParams,
}

impl ServeEngine {
    /// Builds an engine over `backends` and `catalog`.
    ///
    /// # Panics
    ///
    /// Panics on an empty roster or catalog.
    pub fn new(
        backends: Vec<Box<dyn ScoringBackend>>,
        catalog: ModelCatalog,
        config: ServeConfig,
    ) -> Self {
        assert!(
            !backends.is_empty(),
            "the engine needs at least one backend"
        );
        assert!(!catalog.is_empty(), "the engine needs at least one model");
        Self {
            backends,
            catalog,
            config,
            params: PipelineParams::default(),
        }
    }

    /// Replaces the pipeline cost parameters (compile and cache-lookup
    /// charges).
    pub fn with_params(mut self, params: PipelineParams) -> Self {
        self.params = params;
        self
    }

    /// The backend roster.
    pub fn backends(&self) -> &[Box<dyn ScoringBackend>] {
        &self.backends
    }

    /// The model catalog.
    pub fn catalog(&self) -> &ModelCatalog {
        &self.catalog
    }

    /// The device topology this configuration induces.
    pub fn roster(&self) -> DeviceRoster {
        if self.config.serial_device {
            DeviceRoster::serial(&self.backends)
        } else {
            DeviceRoster::paper_default(
                &self.backends,
                self.config.cpu_seats,
                self.config.gpu_streams,
            )
        }
    }

    /// Runs `spec` to completion, recording spans on `tracer` (pass
    /// [`Tracer::disabled`] to skip telemetry).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidWorkload`] — before any event runs —
    /// for a spec [`WorkloadSpec::validate`] rejects; a malformed spec is
    /// load a serving endpoint refuses, not a panic.
    pub fn run(&self, spec: &WorkloadSpec, tracer: &Tracer) -> Result<ServingReport, ServeError> {
        let mut run = Run::new(self, spec, tracer);
        run.seed_arrivals(spec)?;
        while let Some(Reverse(event)) = run.events.pop() {
            let now = event.at;
            if let EventKind::Arrival { draw, client } = event.kind {
                run.arrive(now, draw, client);
            }
            // DeviceFree and HoldExpired carry no state of their own: they
            // exist to create the dispatch opportunity below.
            run.try_dispatch(now);
        }
        Ok(run.into_report())
    }
}

/// Heap events, ordered by `(instant, insertion sequence)` — insertion
/// order breaks simultaneous-event ties deterministically.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    Arrival { draw: usize, client: Option<usize> },
    DeviceFree,
    HoldExpired,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    at: SimInstant,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A deterministic stand-in for the artifact cache: the same
/// content-addressed [`ArtifactKey`]s and LRU policy as
/// `mlscore_backend::ArtifactCache`, but tracking only residency — the
/// engine charges modelled compile time instead of compiling.
struct CacheModel {
    capacity: usize,
    /// `BTreeMap`, not `HashMap`: residency feeds the report's cache
    /// counters and the LRU scan, so iteration order must be a function
    /// of content alone.
    resident: BTreeMap<ArtifactKey, u64>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheModel {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache model capacity must be non-zero");
        Self {
            capacity,
            resident: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Would a lookup hit right now? (No counters touched — arbitration
    /// peeks at many backends per dispatch.)
    fn would_hit(&self, key: &ArtifactKey) -> bool {
        self.resident.contains_key(key)
    }

    /// One lookup: bumps counters, inserts on miss, evicts LRU at
    /// capacity. Returns `true` on a hit.
    fn probe(&mut self, key: ArtifactKey) -> bool {
        self.tick += 1;
        if let Some(last_used) = self.resident.get_mut(&key) {
            *last_used = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        while self.resident.len() >= self.capacity {
            // min_by_key keeps the first minimum in iteration order, and
            // BTreeMap iterates in key order — last-used ties break on the
            // smallest key, deterministically.
            let lru = self
                .resident
                .iter()
                .min_by_key(|&(_, &t)| t)
                .map(|(k, _)| k.clone());
            let Some(lru) = lru else { break };
            self.resident.remove(&lru);
            self.evictions += 1;
        }
        self.resident.insert(key, self.tick);
        false
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.resident.len(),
        }
    }
}

/// A zeroed per-class accounting slice.
fn empty_class(class: QueryClass) -> ClassReport {
    ClassReport {
        class,
        completed: 0,
        rejected: 0,
        dropped: 0,
        timed_out: 0,
        slo_violations: 0,
        latency: Histogram::new(),
    }
}

/// Mutable state of one run.
struct Run<'a> {
    engine: &'a ServeEngine,
    tracer: &'a Tracer,
    roster: DeviceRoster,
    ledgers: Vec<DeviceLedger>,
    queue: AdmissionQueue,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    draws: Vec<(usize, u64)>,
    next_id: RequestId,
    // Closed-loop state.
    next_draw: usize,
    think_rng: Option<StdRng>,
    think_mean: f64,
    // Arbitration state.
    adaptive: Option<AdaptiveScheduler>,
    cache: Option<CacheModel>,
    holds: BTreeSet<RequestId>,
    // Accounting.
    admitted: u64,
    completed: u64,
    rejected: u64,
    dropped: u64,
    timed_out: u64,
    unservable: u64,
    records_scored: u64,
    batches: u64,
    coalesced_batches: u64,
    batch_sizes: BTreeMap<usize, u64>,
    latency: Histogram,
    /// Per-class accounting as named fields — `class_mut` is a total
    /// match over [`QueryClass`], so no lookup can miss.
    interactive: ClassReport,
    analytical: ClassReport,
    picks: BTreeMap<String, u64>,
    dispatches: Vec<DispatchRecord>,
    last_completion: SimInstant,
    // Observability.
    series: TimeSeriesRecorder,
    journal: RequestJournal,
}

impl<'a> Run<'a> {
    fn new(engine: &'a ServeEngine, spec: &WorkloadSpec, tracer: &'a Tracer) -> Self {
        let roster = engine.roster();
        let ledgers = roster
            .devices()
            .iter()
            .map(|d| DeviceLedger::new(d.slots))
            .collect();
        let adaptive = match engine.config.policy {
            ServePolicy::Oracle => None,
            ServePolicy::Adaptive { alpha } => Some(AdaptiveScheduler::new(alpha)),
        };
        let cache = engine
            .config
            .charge_compile
            .then(|| CacheModel::new(engine.config.cache_entries));
        Self {
            engine,
            tracer,
            roster,
            ledgers,
            queue: AdmissionQueue::new(engine.config.queue),
            events: BinaryHeap::new(),
            seq: 0,
            draws: spec.draws(engine.catalog.len()),
            next_id: 0,
            next_draw: 0,
            think_rng: None,
            think_mean: 0.0,
            adaptive,
            cache,
            holds: BTreeSet::new(),
            admitted: 0,
            completed: 0,
            rejected: 0,
            dropped: 0,
            timed_out: 0,
            unservable: 0,
            records_scored: 0,
            batches: 0,
            coalesced_batches: 0,
            batch_sizes: BTreeMap::new(),
            latency: Histogram::new(),
            interactive: empty_class(QueryClass::Interactive),
            analytical: empty_class(QueryClass::Analytical),
            picks: BTreeMap::new(),
            dispatches: Vec::new(),
            last_completion: SimInstant::ZERO,
            series: TimeSeriesRecorder::new(engine.config.observe.window),
            journal: RequestJournal::new(),
        }
    }

    fn push_event(&mut self, at: SimInstant, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { at, seq, kind }));
    }

    fn seed_arrivals(&mut self, spec: &WorkloadSpec) -> Result<(), ServeError> {
        spec.validate()?;
        match spec.arrivals {
            ArrivalProcess::Batch | ArrivalProcess::OpenPoisson { .. } => {
                for (draw, at) in spec.open_arrival_times()?.into_iter().enumerate() {
                    self.push_event(at, EventKind::Arrival { draw, client: None });
                }
                self.next_draw = spec.queries;
            }
            ArrivalProcess::ClosedLoop { clients, think } => {
                let first = clients.min(spec.queries);
                for client in 0..first {
                    self.push_event(
                        SimInstant::ZERO,
                        EventKind::Arrival {
                            draw: client,
                            client: Some(client),
                        },
                    );
                }
                self.next_draw = first;
                self.think_rng = Some(spec.think_rng());
                self.think_mean = think.as_secs();
            }
        }
        Ok(())
    }

    fn arrive(&mut self, now: SimInstant, draw: usize, client: Option<usize>) {
        // analyze: allow(P001, reason="arrival events only carry draw indices seed_arrivals/request_left generated below draws.len()")
        let (model, n_records) = self.draws[draw];
        let id = self.next_id;
        self.next_id += 1;
        let request = ServeRequest {
            id,
            class: QueryClass::of(n_records),
            model,
            n_records,
            arrival: now,
            client,
        };
        self.journal.emit(
            now,
            id,
            JournalKind::Arrival {
                class: request.class,
                model,
                records: n_records,
            },
        );
        self.series.record_arrival(now, request.class.name());
        match self.queue.offer(request) {
            Admission::Admitted => {
                self.admitted += 1;
                self.journal.emit(now, id, JournalKind::Admitted);
            }
            Admission::Rejected(victim) => {
                self.rejected += 1;
                self.class_mut(victim.class).rejected += 1;
                self.shed(now, &victim, "shed reject", ShedReason::Rejected);
                self.request_left(now, victim.client);
            }
            Admission::DroppedOldest(victim) => {
                self.admitted += 1;
                self.journal.emit(now, id, JournalKind::Admitted);
                self.dropped += 1;
                self.class_mut(victim.class).dropped += 1;
                self.shed(now, &victim, "shed drop-oldest", ShedReason::DroppedOldest);
                self.request_left(now, victim.client);
            }
        }
        self.series.record_queue_depth(now, self.queue.len() as u64);
    }

    /// A request left the system without completing (shed) or completed;
    /// for closed loops, its client thinks and then issues the next query.
    fn request_left(&mut self, at: SimInstant, client: Option<usize>) {
        let Some(client) = client else { return };
        let Some(rng) = self.think_rng.as_mut() else {
            return;
        };
        if self.next_draw >= self.draws.len() {
            return;
        }
        let draw = self.next_draw;
        self.next_draw += 1;
        let think = exponential(rng, self.think_mean);
        self.push_event(
            at + think,
            EventKind::Arrival {
                draw,
                client: Some(client),
            },
        );
    }

    /// Records one shed: a span on the victim's class lane, a journal
    /// entry, and the time-series shed counter.
    fn shed(&mut self, now: SimInstant, victim: &ServeRequest, what: &str, reason: ShedReason) {
        self.tracer
            .span(what, victim.arrival)
            .track("serve", format!("class {}", victim.class.name()))
            .meta("request", victim.id.to_string())
            .meta("records", victim.n_records.to_string())
            .finish(now);
        self.journal
            .emit(now, victim.id, JournalKind::Shed { reason });
        self.series.record_shed(now, victim.class.name());
    }

    fn class_mut(&mut self, class: QueryClass) -> &mut ClassReport {
        match class {
            QueryClass::Interactive => &mut self.interactive,
            QueryClass::Analytical => &mut self.analytical,
        }
    }

    /// The backend at roster index `i`.
    fn backend(&self, i: usize) -> &dyn ScoringBackend {
        // analyze: allow(P001, reason="arbitration only yields indices obtained by enumerating this roster")
        self.engine.backends[i].as_ref()
    }

    /// The predicted one-time prepare charge arbitration folds in for
    /// backend `i` on `model`: a warm lookup if the artifact is resident,
    /// a full model pre-processing pass if not, nothing when compile
    /// charging is off.
    fn predict_prepare(&self, backend: usize, model: usize) -> SimDuration {
        let Some(cache) = &self.cache else {
            return SimDuration::ZERO;
        };
        let key = artifact_key(self.backend(backend), self.engine.catalog.bundle(model));
        if cache.would_hit(&key) {
            self.engine.params.cache_lookup
        } else {
            self.engine
                .params
                .model_preprocess_time(self.engine.catalog.model_bytes(model))
        }
    }

    fn arbitrate(
        &self,
        stats: &ModelStats,
        n_records: u64,
        model: usize,
        now: SimInstant,
    ) -> Option<Choice> {
        let eligible = |i: usize| {
            self.ledgers
                .get(self.roster.device_of(i))
                .is_some_and(|l| l.has_free_slot(now))
        };
        let reuse = self
            .cache
            .as_ref()
            .map_or(1, |c| c.stats().expected_reuse());
        match &self.adaptive {
            None => choose_amortized_eligible(
                stats,
                n_records,
                reuse,
                &self.engine.backends,
                &|i| self.predict_prepare(i, model),
                &eligible,
            ),
            Some(scheduler) => scheduler.choose_amortized_among(
                stats,
                n_records,
                reuse,
                &self.engine.backends,
                &eligible,
            ),
        }
    }

    fn supported_at_all(&self, stats: &ModelStats) -> bool {
        self.engine
            .backends
            .iter()
            .any(|b| b.supports(stats).is_ok())
    }

    /// Drains every dispatch opportunity available at `now`: expire lapsed
    /// deadlines, then repeatedly scan the queue's per-model heads in FIFO
    /// order and dispatch the first batch whose arbitration finds an
    /// eligible backend. A head whose devices are all busy does not block
    /// other models (no cross-model head-of-line blocking), but same-model
    /// requests only ever leave in FIFO order.
    fn try_dispatch(&mut self, now: SimInstant) {
        let expired = self.queue.expire(now);
        let any_expired = !expired.is_empty();
        for victim in expired {
            self.timed_out += 1;
            self.class_mut(victim.class).timed_out += 1;
            self.shed(now, &victim, "deadline timeout", ShedReason::TimedOut);
            self.request_left(now, victim.client);
        }
        if any_expired {
            self.series.record_queue_depth(now, self.queue.len() as u64);
        }
        let max_requests = self.engine.config.coalesce.effective_max_requests();
        let max_records = self.engine.config.coalesce.effective_max_records();
        let hold = if self.engine.config.coalesce.enabled {
            self.engine.config.coalesce.hold
        } else {
            SimDuration::ZERO
        };
        loop {
            let mut seen = BTreeSet::new();
            let heads: Vec<ServeRequest> = self
                .queue
                .iter()
                .filter(|r| seen.insert(r.model))
                .copied()
                .collect();
            let mut dispatched = false;
            for head in heads {
                let (batch_requests, batch_records) =
                    self.queue
                        .preview_batch(head.model, max_requests, max_records);
                // Hold back a partial batch while the coalescing window is
                // open — more same-model arrivals may still merge in.
                if !hold.is_zero()
                    && batch_requests < max_requests
                    && batch_records < max_records
                    && now < head.arrival + hold
                {
                    if self.holds.insert(head.id) {
                        self.push_event(head.arrival + hold, EventKind::HoldExpired);
                    }
                    continue;
                }
                let stats = *self.engine.catalog.stats(head.model);
                match self.arbitrate(&stats, batch_records, head.model, now) {
                    Some(choice) => {
                        let batch = self.queue.take_batch(head.model, max_requests, max_records);
                        self.dispatch(now, batch, choice);
                        dispatched = true;
                        break; // the queue changed: rescan heads
                    }
                    None if !self.supported_at_all(&stats) => {
                        let batch = self.queue.take_batch(head.model, max_requests, max_records);
                        for victim in batch {
                            self.unservable += 1;
                            self.shed(now, &victim, "unservable", ShedReason::Unservable);
                            self.request_left(now, victim.client);
                        }
                        self.series.record_queue_depth(now, self.queue.len() as u64);
                        dispatched = true; // the queue changed: rescan heads
                        break;
                    }
                    // Supported but every eligible device is busy: wait for
                    // a DeviceFree event.
                    None => {}
                }
            }
            if !dispatched {
                break;
            }
        }
    }

    /// Executes one device pass for `batch` on `choice`. An empty batch is
    /// a no-op — `try_dispatch` only hands over non-empty FIFO batches.
    fn dispatch(&mut self, now: SimInstant, batch: Vec<ServeRequest>, choice: Choice) {
        let Some(head) = batch.first() else { return };
        let model = head.model;
        let stats = *self.engine.catalog.stats(model);
        let total_records: u64 = batch.iter().map(|r| r.n_records).sum();

        // Compile charge through the cache model.
        let (prepare, prepare_span) = if self.cache.is_some() {
            let key = artifact_key(
                self.backend(choice.index),
                self.engine.catalog.bundle(model),
            );
            let hit = self.cache.as_mut().is_some_and(|cache| cache.probe(key));
            if hit {
                (self.engine.params.cache_lookup, Some("cache hit"))
            } else {
                let cost = self
                    .engine
                    .params
                    .model_preprocess_time(self.engine.catalog.model_bytes(model));
                (cost, Some("compile model"))
            }
        } else {
            (SimDuration::ZERO, None)
        };
        if prepare_span == Some("compile model") {
            if let Some(scheduler) = &mut self.adaptive {
                scheduler.observe_prepare(&stats, choice.index, prepare);
            }
        }

        let breakdown = self.backend(choice.index).estimate(&stats, total_records);
        let score_time = breakdown.total();
        if let Some(scheduler) = &mut self.adaptive {
            scheduler.observe(&stats, choice.index, total_records, score_time);
        }

        let device = self.roster.device_of(choice.index);
        // analyze: allow(P001, reason="ledgers are built one-to-one from roster devices, so device_of indices cannot miss")
        let (start, end) = self.ledgers[device].reserve(now, prepare + score_time);
        debug_assert_eq!(start, now, "arbitration only admits free devices");
        self.series.record_queue_depth(now, self.queue.len() as u64);

        let batch_seq = self.batches;
        self.batches += 1;
        if batch.len() > 1 {
            self.coalesced_batches += 1;
        }

        // Telemetry: per-request queue-wait on the class lanes (each
        // originating its request's causal flow), then the pass phases on
        // the device lane.
        let device_name = self
            .roster
            .devices()
            .get(device)
            .map_or_else(|| "?".to_string(), |d| d.name.clone());
        let lane = format!("device {device_name}");
        for r in &batch {
            self.tracer
                .span("queue wait", r.arrival)
                .track("serve", format!("class {}", r.class.name()))
                .meta("request", r.id.to_string())
                .meta("records", r.n_records.to_string())
                .flow_out(r.id)
                .finish(start);
        }
        // One "device pass" span covering the whole reservation terminates
        // the flow of every request the pass scored: the Perfetto arrow
        // crosses from each class lane to this device lane.
        let mut pass_span = self
            .tracer
            .span("device pass", start)
            .track("serve", lane.as_str())
            .meta("backend", choice.name.as_str())
            .meta("batch", batch_seq.to_string())
            .meta("requests", batch.len().to_string())
            .meta("records", total_records.to_string());
        // CPU backends with a kernel tier report which scoring kernel the
        // executor dispatches for this shape/batch (offload devices don't).
        if let Some(kernel) = choice.kernel {
            pass_span = pass_span.meta("kernel", kernel);
        }
        // Cache-resident models dispatch through the fused streaming path —
        // chunks pulled straight off the coalesced request frames (see
        // `score_merged_stream`) — while cold or uncached passes marshal a
        // materialized batch first.
        pass_span = pass_span.meta(
            "path",
            if prepare_span == Some("cache hit") {
                "fused"
            } else {
                "staged"
            },
        );
        for r in &batch {
            pass_span = pass_span.flow_in(r.id);
        }
        pass_span.finish(end);
        self.tracer
            .span("coalesce", start)
            .track("serve", lane.as_str())
            .meta("backend", choice.name.as_str())
            .meta("requests", batch.len().to_string())
            .meta("records", total_records.to_string())
            .finish(start);
        let mut cursor = start;
        if let Some(name) = prepare_span {
            cursor = self
                .tracer
                .span(name, cursor)
                .track("serve", lane.as_str())
                .meta("backend", choice.name.as_str())
                .finish_after(prepare);
        }
        for (name, class) in [
            ("setup", StageClass::Overhead),
            ("transfer", StageClass::Transfer),
            ("compute", StageClass::Compute),
            ("drain", StageClass::Pipeline),
        ] {
            let dur = breakdown.total_class(class);
            if !dur.is_zero() {
                cursor = self
                    .tracer
                    .span(name, cursor)
                    .track("serve", lane.as_str())
                    .meta("backend", choice.name.as_str())
                    .meta("records", total_records.to_string())
                    .finish_after(dur);
            }
        }
        // The phase spans re-sum the breakdown per class, so the cursor can
        // differ from `end` by float-addition-order ulps — never more.
        debug_assert!(
            (cursor.duration_since(SimInstant::ZERO).as_secs()
                - end.duration_since(SimInstant::ZERO).as_secs())
            .abs()
                <= 1e-9 * end.duration_since(SimInstant::ZERO).as_secs().max(1.0),
            "span phases must cover the reservation: {cursor:?} vs {end:?}"
        );
        let _ = cursor;

        // Accounting.
        *self.batch_sizes.entry(batch.len()).or_default() += 1;
        *self.picks.entry(choice.name.clone()).or_default() += batch.len() as u64;
        self.series
            .record_busy(&device_name, start, prepare + score_time);
        for r in &batch {
            let latency = end - r.arrival;
            self.latency.record(latency);
            let violated = self
                .engine
                .config
                .queue
                .slo(r.class)
                .latency_slo
                .is_some_and(|slo| latency > slo);
            let class = self.class_mut(r.class);
            class.completed += 1;
            class.latency.record(latency);
            if violated {
                class.slo_violations += 1;
            }
            self.completed += 1;
            self.records_scored += r.n_records;
            self.dispatches.push(DispatchRecord {
                id: r.id,
                class: r.class,
                model,
                backend: choice.name.clone(),
                batch: batch_seq,
                dispatched_at: start,
            });
            if batch.len() > 1 {
                self.journal.emit(
                    start,
                    r.id,
                    JournalKind::Coalesced {
                        batch: batch_seq,
                        size: batch.len(),
                    },
                );
            }
            self.journal.emit(
                start,
                r.id,
                JournalKind::Dispatched {
                    batch: batch_seq,
                    backend: choice.name.clone(),
                    device: device_name.clone(),
                },
            );
            // Completions are journaled in the same order the latency
            // histograms fold them, so refolding the journal reproduces
            // the report's distributions bit-exactly.
            self.journal.emit(
                end,
                r.id,
                JournalKind::Completed {
                    latency,
                    queue_wait: start - r.arrival,
                    prepare,
                    setup: breakdown.total_class(StageClass::Overhead),
                    transfer: breakdown.total_class(StageClass::Transfer),
                    compute: breakdown.total_class(StageClass::Compute),
                    drain: breakdown.total_class(StageClass::Pipeline),
                },
            );
            self.series
                .record_completion(end, r.class.name(), latency, violated);
        }
        if end > self.last_completion {
            self.last_completion = end;
        }
        for r in batch {
            self.request_left(end, r.client);
        }
        self.push_event(end, EventKind::DeviceFree);
    }

    fn into_report(mut self) -> ServingReport {
        // Scan the finished series for budget-burn alerts; each one lands
        // in the trace (a span covering the offending window on an
        // `slo {class}` lane) and in the journal.
        let alerts = SloMonitor::scan(&self.series, self.engine.config.observe);
        for alert in &alerts {
            self.tracer
                .span("slo alert", alert.at)
                .track("serve", format!("slo {}", alert.class))
                .meta("window", alert.window.to_string())
                .meta("attainment", format!("{:.6}", alert.attainment))
                .meta("burn rate", format!("{:.6}", alert.burn_rate))
                .finish(alert.at + self.series.window_len());
            self.journal.alert(alert.clone());
        }
        let makespan = self.last_completion.duration_since(SimInstant::ZERO);
        let devices = self
            .roster
            .devices()
            .iter()
            .zip(&self.ledgers)
            .map(|(spec, ledger)| DeviceReport {
                name: spec.name.clone(),
                slots: spec.slots,
                passes: ledger.reservations(),
                busy: ledger.busy_time(),
                utilization: ledger.utilization(makespan),
            })
            .collect();
        ServingReport {
            offered: self.next_id,
            admitted: self.admitted,
            completed: self.completed,
            rejected: self.rejected,
            dropped: self.dropped,
            timed_out: self.timed_out,
            unservable: self.unservable,
            records_scored: self.records_scored,
            makespan,
            batches: self.batches,
            coalesced_batches: self.coalesced_batches,
            batch_sizes: self.batch_sizes,
            latency: self.latency,
            classes: vec![self.interactive, self.analytical],
            picks: self.picks,
            devices,
            cache: self
                .cache
                .as_ref()
                .map(CacheModel::stats)
                .unwrap_or_default(),
            expected_reuse: self
                .cache
                .as_ref()
                .map_or(1, |c| c.stats().expected_reuse()),
            dispatches: self.dispatches,
            series: self.series,
            journal: self.journal,
            alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ShedPolicy;
    use crate::request::ClassSlo;
    use mlscore_sched::paper_backends;

    fn fpga_only() -> Vec<Box<dyn ScoringBackend>> {
        paper_backends()
            .into_iter()
            .filter(|b| b.name() == "FPGA")
            .collect()
    }

    fn spec(queries: usize, arrivals: ArrivalProcess) -> WorkloadSpec {
        WorkloadSpec {
            queries,
            seed: 42,
            arrivals,
        }
    }

    #[test]
    fn open_loop_run_is_conserved_and_deterministic() {
        let engine = ServeEngine::new(
            paper_backends(),
            ModelCatalog::paper_mix(),
            ServeConfig::default(),
        );
        let w = spec(60, ArrivalProcess::OpenPoisson { rate_qps: 40.0 });
        let a = engine.run(&w, &Tracer::disabled()).unwrap();
        let b = engine.run(&w, &Tracer::disabled()).unwrap();
        assert!(a.is_conserved());
        assert_eq!(a.offered, 60);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.picks, b.picks);
        assert_eq!(a.dispatches, b.dispatches);
        assert!(a.makespan > SimDuration::ZERO);
        // The mixed trace should use more than one backend.
        assert!(a.picks.len() >= 2, "picks {:?}", a.picks);
    }

    #[test]
    fn overload_with_bounded_queue_sheds() {
        let config = ServeConfig {
            queue: QueueConfig {
                capacity: Some(4),
                shed: ShedPolicy::RejectNew,
                ..QueueConfig::default()
            },
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(fpga_only(), ModelCatalog::paper_mix(), config);
        let report = engine
            .run(
                &spec(200, ArrivalProcess::OpenPoisson { rate_qps: 5_000.0 }),
                &Tracer::disabled(),
            )
            .unwrap();
        assert!(report.is_conserved());
        assert!(report.rejected > 0, "queue of 4 at 5k qps must shed");
        assert_eq!(report.shed(), report.rejected);
    }

    #[test]
    fn drop_oldest_evicts_instead_of_rejecting() {
        let config = ServeConfig {
            queue: QueueConfig {
                capacity: Some(4),
                shed: ShedPolicy::DropOldest,
                ..QueueConfig::default()
            },
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(fpga_only(), ModelCatalog::paper_mix(), config);
        let report = engine
            .run(
                &spec(200, ArrivalProcess::OpenPoisson { rate_qps: 5_000.0 }),
                &Tracer::disabled(),
            )
            .unwrap();
        assert!(report.is_conserved());
        assert!(report.dropped > 0);
        assert_eq!(report.rejected, 0);
    }

    #[test]
    fn deadlines_time_out_queued_requests() {
        let slo = ClassSlo {
            queue_deadline: Some(SimDuration::from_millis(1.0)),
            latency_slo: Some(SimDuration::from_millis(2.0)),
        };
        let config = ServeConfig {
            queue: QueueConfig {
                interactive: slo,
                analytical: slo,
                ..QueueConfig::default()
            },
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(fpga_only(), ModelCatalog::paper_mix(), config);
        let report = engine
            .run(
                &spec(150, ArrivalProcess::OpenPoisson { rate_qps: 5_000.0 }),
                &Tracer::disabled(),
            )
            .unwrap();
        assert!(report.is_conserved());
        assert!(report.timed_out > 0, "1 ms deadlines at 5k qps must lapse");
        let per_class: u64 = report.classes.iter().map(|c| c.timed_out).sum();
        assert_eq!(per_class, report.timed_out);
        // With latency SLOs this tight, queued completions violate them.
        let violations: u64 = report.classes.iter().map(|c| c.slo_violations).sum();
        assert!(violations > 0);
    }

    #[test]
    fn closed_loop_issues_every_query_and_self_throttles() {
        let engine = ServeEngine::new(
            paper_backends(),
            ModelCatalog::paper_mix(),
            ServeConfig::default(),
        );
        let report = engine
            .run(
                &spec(
                    80,
                    ArrivalProcess::ClosedLoop {
                        clients: 4,
                        think: SimDuration::from_millis(5.0),
                    },
                ),
                &Tracer::disabled(),
            )
            .unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.offered, 80);
        // Nothing sheds in a closed loop with an unbounded queue.
        assert_eq!(report.completed, 80);
        // At most `clients` requests are ever in flight, so no pass can
        // merge more than that.
        assert!(report.max_batch() <= 4);
    }

    #[test]
    fn coalescing_merges_under_overload_and_disabled_never_does() {
        let mk = |enabled| {
            let config = ServeConfig {
                coalesce: if enabled {
                    CoalesceConfig::default()
                } else {
                    CoalesceConfig::disabled()
                },
                ..ServeConfig::default()
            };
            let engine = ServeEngine::new(fpga_only(), ModelCatalog::paper_mix(), config);
            engine
                .run(
                    &spec(300, ArrivalProcess::OpenPoisson { rate_qps: 3_000.0 }),
                    &Tracer::disabled(),
                )
                .unwrap()
        };
        let on = mk(true);
        let off = mk(false);
        assert!(on.is_conserved() && off.is_conserved());
        assert!(
            on.coalesced_batches > 0,
            "overload must build mergeable queues"
        );
        assert!(on.max_batch() > 1);
        assert_eq!(off.coalesced_batches, 0);
        assert_eq!(off.max_batch(), 1);
        assert!(off.batches >= on.batches, "merging cannot add passes");
        // Fewer fixed per-pass overheads: the merged run finishes no later.
        assert!(on.makespan <= off.makespan);
    }

    #[test]
    fn hold_window_builds_bigger_batches_at_moderate_load() {
        let mk = |hold| {
            let config = ServeConfig {
                coalesce: CoalesceConfig {
                    hold,
                    ..CoalesceConfig::default()
                },
                ..ServeConfig::default()
            };
            let engine = ServeEngine::new(fpga_only(), ModelCatalog::paper_mix(), config);
            engine
                .run(
                    &spec(200, ArrivalProcess::OpenPoisson { rate_qps: 300.0 }),
                    &Tracer::disabled(),
                )
                .unwrap()
        };
        let eager = mk(SimDuration::ZERO);
        let held = mk(SimDuration::from_millis(50.0));
        assert!(held.is_conserved());
        assert!(
            held.mean_batch() > eager.mean_batch(),
            "holding {:.3} vs eager {:.3}",
            held.mean_batch(),
            eager.mean_batch()
        );
    }

    #[test]
    fn adaptive_policy_serves_the_whole_workload() {
        let config = ServeConfig {
            policy: ServePolicy::Adaptive { alpha: 0.4 },
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(paper_backends(), ModelCatalog::paper_mix(), config);
        let w = spec(120, ArrivalProcess::OpenPoisson { rate_qps: 60.0 });
        let report = engine.run(&w, &Tracer::disabled()).unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.completed, 120);
        // Exploration probes several backends.
        assert!(report.picks.len() >= 3, "picks {:?}", report.picks);
        // Determinism holds for the learner too.
        let again = engine.run(&w, &Tracer::disabled()).unwrap();
        assert_eq!(report.dispatches, again.dispatches);
    }

    #[test]
    fn compile_charging_populates_the_cache_model() {
        let engine = ServeEngine::new(
            fpga_only(),
            ModelCatalog::paper_mix(),
            ServeConfig::default(),
        );
        let report = engine
            .run(
                &spec(100, ArrivalProcess::OpenPoisson { rate_qps: 100.0 }),
                &Tracer::disabled(),
            )
            .unwrap();
        assert!(report.is_conserved());
        assert_eq!(report.cache.lookups(), report.batches);
        assert!(
            report.cache.hits > 0,
            "12 models over 100 queries must re-hit"
        );
        // At most one artifact per (model, backend) pair.
        assert!(report.cache.entries <= 12);
        assert_eq!(report.expected_reuse, report.cache.expected_reuse());
        // Compile charging off: the cache is bypassed entirely.
        let free = ServeEngine::new(
            fpga_only(),
            ModelCatalog::paper_mix(),
            ServeConfig {
                charge_compile: false,
                ..ServeConfig::default()
            },
        );
        let free_report = free
            .run(
                &spec(100, ArrivalProcess::OpenPoisson { rate_qps: 100.0 }),
                &Tracer::disabled(),
            )
            .unwrap();
        assert_eq!(free_report.cache, CacheStats::default());
        assert!(free_report.makespan <= report.makespan);
    }

    #[test]
    fn observability_feeds_journal_series_and_flows() {
        use crate::journal::JournalKind;
        let config = ServeConfig {
            queue: QueueConfig {
                capacity: Some(32),
                shed: ShedPolicy::RejectNew,
                ..QueueConfig::default()
            },
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(fpga_only(), ModelCatalog::paper_mix(), config);
        let tracer = Tracer::new();
        let report = engine
            .run(
                &spec(200, ArrivalProcess::OpenPoisson { rate_qps: 2_000.0 }),
                &tracer,
            )
            .unwrap();
        let trace = tracer.take();
        assert!(report.is_conserved());

        // Journal: one lifecycle entry per transition, ids everywhere.
        let count = |name: &str| {
            report
                .journal
                .entries()
                .iter()
                .filter(|e| e.kind.name() == name)
                .count() as u64
        };
        assert_eq!(count("arrival"), report.offered);
        assert_eq!(count("admitted"), report.admitted);
        assert_eq!(count("shed"), report.shed() + report.unservable);
        assert_eq!(count("completed"), report.completed);
        // Refolding journaled latencies in emission order reproduces the
        // report's overall histogram bit-exactly.
        let mut refold = Histogram::new();
        for entry in report.journal.entries() {
            if let JournalKind::Completed { latency, .. } = entry.kind {
                refold.record(latency);
            }
        }
        assert_eq!(refold, report.latency);

        // Series: windowed counters sum back to the run totals.
        assert!(report.series.len() >= 2, "overload run spans windows");
        let arrivals: u64 = report.series.windows().map(|(_, w)| w.arrivals).sum();
        assert_eq!(arrivals, report.offered);
        let completions: u64 = report.series.windows().map(|(_, w)| w.completions()).sum();
        assert_eq!(completions, report.completed);
        assert!(report.series.peak_queue_depth() > 0);

        // Flows: every completed request's queue-wait span originates its
        // flow, and some coalesced device pass terminates several.
        let out_ids: Vec<u64> = trace
            .events()
            .iter()
            .filter(|e| e.name == "queue wait")
            .flat_map(|e| e.flows_out.clone())
            .collect();
        assert_eq!(out_ids.len() as u64, report.completed);
        let in_ids: Vec<u64> = trace
            .events()
            .iter()
            .filter(|e| e.name == "device pass")
            .flat_map(|e| e.flows_in.clone())
            .collect();
        let outs: BTreeSet<u64> = out_ids.into_iter().collect();
        let ins: BTreeSet<u64> = in_ids.into_iter().collect();
        assert_eq!(outs, ins, "every flow started is terminated");
        assert!(
            trace
                .events()
                .iter()
                .any(|e| e.name == "device pass" && e.flows_in.len() > 1),
            "2k qps on one FPGA must coalesce"
        );
    }

    #[test]
    fn cache_resident_passes_dispatch_fused() {
        let engine = ServeEngine::new(
            fpga_only(),
            ModelCatalog::paper_mix(),
            ServeConfig::default(),
        );
        let tracer = Tracer::new();
        let report = engine
            .run(
                &spec(100, ArrivalProcess::OpenPoisson { rate_qps: 100.0 }),
                &tracer,
            )
            .unwrap();
        let trace = tracer.take();
        let path_of = |e: &mlscore_telemetry::SpanEvent| {
            e.metadata
                .iter()
                .find(|(k, _)| k == "path")
                .map(|(_, v)| v.clone())
        };
        let passes: Vec<_> = trace
            .events()
            .iter()
            .filter(|e| e.name == "device pass")
            .collect();
        assert_eq!(passes.len() as u64, report.batches);
        // Every pass is tagged, and warm (cache-hit) passes go fused: the
        // fused count matches the cache model's hit count exactly.
        assert!(passes.iter().all(|e| path_of(e).is_some()));
        let fused = passes
            .iter()
            .filter(|e| path_of(e).as_deref() == Some("fused"))
            .count() as u64;
        assert_eq!(fused, report.cache.hits);
        assert!(fused > 0, "12 models over 100 queries must re-hit");
        assert!(
            passes
                .iter()
                .any(|e| path_of(e).as_deref() == Some("staged")),
            "cold compiles stay on the staged path"
        );
    }

    #[test]
    fn serving_spans_land_on_device_and_class_lanes() {
        let engine = ServeEngine::new(
            paper_backends(),
            ModelCatalog::paper_mix(),
            ServeConfig::default(),
        );
        let tracer = Tracer::new();
        let report = engine
            .run(
                &spec(40, ArrivalProcess::OpenPoisson { rate_qps: 200.0 }),
                &tracer,
            )
            .unwrap();
        let trace = tracer.take();
        assert!(!trace.is_empty());
        let lanes: BTreeSet<String> = trace
            .events()
            .iter()
            .map(|e| e.track.lane.clone())
            .collect();
        assert!(lanes.iter().any(|l| l.starts_with("device ")), "{lanes:?}");
        assert!(lanes.contains("class interactive") || lanes.contains("class analytical"));
        let queue_waits = trace
            .events()
            .iter()
            .filter(|e| e.name == "queue wait")
            .count() as u64;
        assert_eq!(queue_waits, report.completed);
        let computes = trace
            .events()
            .iter()
            .filter(|e| e.name == "compute")
            .count() as u64;
        assert_eq!(computes, report.batches);
    }
}
