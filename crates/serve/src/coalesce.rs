//! Micro-batch coalescing: merging queued requests for the same compiled
//! model into one device pass.
//!
//! Accelerator scoring pays large fixed per-call costs (CSR setup, model
//! DMA, completion signalling, driver overhead — the paper's `O` and part
//! of `L`), so `k` small same-model requests scored as one concatenated
//! batch cost one set of fixed overheads instead of `k`. The merge is
//! *bit-exact*: scoring the concatenation and splitting the predictions
//! back per request yields exactly what scoring each request alone would
//! (forest inference is row-independent).

use serde::{Deserialize, Serialize};

use mlscore_backend::{BackendError, CompiledModel, ScoringBackend, ScoringRequest};
use mlscore_data::{ChainScanner, TabularFrame};
use mlscore_forest::{Predictions, RandomForest};
use mlscore_sim::SimDuration;

use crate::error::ServeError;

/// Coalescer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoalesceConfig {
    /// Master switch; disabled, every batch holds exactly one request.
    pub enabled: bool,
    /// Maximum requests merged into one device pass.
    pub max_requests: usize,
    /// Maximum merged records per pass. The first request always fits, so
    /// an oversized single request still dispatches (as a batch of one).
    pub max_records: u64,
    /// How long a dispatchable batch head may be held back waiting for
    /// more same-model arrivals. Zero (the default) dispatches as soon as
    /// a device is free — coalescing then happens only when the queue has
    /// already built up.
    pub hold: SimDuration,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_requests: 64,
            max_records: 1_000_000,
            hold: SimDuration::ZERO,
        }
    }
}

impl CoalesceConfig {
    /// A configuration that never merges (every pass scores one request).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// The request cap arbitration sees: 1 when disabled.
    pub fn effective_max_requests(&self) -> usize {
        if self.enabled {
            self.max_requests.max(1)
        } else {
            1
        }
    }

    /// The record cap arbitration sees: unbounded when disabled (a single
    /// request is never split).
    pub fn effective_max_records(&self) -> u64 {
        if self.enabled {
            self.max_records.max(1)
        } else {
            u64::MAX
        }
    }
}

/// Functionally scores `frames` as one concatenated device pass on
/// `backend` and splits the predictions back per input frame.
///
/// # Errors
///
/// Returns [`ServeError::EmptyBatch`] for zero frames; backend scoring
/// errors (including mixed feature widths among `frames`, which surface
/// as [`BackendError::Unsupported`]) propagate as
/// [`ServeError::Backend`].
pub fn score_merged(
    backend: &dyn ScoringBackend,
    forest: &RandomForest,
    frames: &[&TabularFrame],
) -> Result<Vec<Predictions>, ServeError> {
    let n_features = frames.first().ok_or(ServeError::EmptyBatch)?.n_features();
    let mut merged = Vec::with_capacity(frames.iter().map(|f| f.as_slice().len()).sum());
    for frame in frames {
        merged.extend_from_slice(frame.as_slice());
    }
    let merged = TabularFrame::from_rows(merged, n_features)
        .map_err(|e| BackendError::unsupported(backend.name(), format!("merged frame: {e}")))?;
    let request = ScoringRequest::new(forest, &merged)?;
    let predictions = backend.score(&request)?;
    Ok(split_predictions(
        predictions,
        frames.iter().map(|f| f.n_rows()),
    ))
}

/// Like [`score_merged`], but over the *fused* streaming path: a
/// [`ChainScanner`] pulls cache-sized chunks straight off the request
/// frames (never materializing the concatenated copy `score_merged`
/// builds) and the warm `model` scores them via
/// [`ScoringBackend::score_prepared_stream`]. Bit-exact with
/// [`score_merged`]: chunks never span frame boundaries, so the folded
/// predictions split back per request on the same row counts.
///
/// # Errors
///
/// Returns [`ServeError::EmptyBatch`] for zero frames; mixed feature
/// widths among `frames` surface as [`BackendError::Unsupported`] and
/// backend scoring errors propagate as [`ServeError::Backend`].
pub fn score_merged_stream(
    backend: &dyn ScoringBackend,
    model: &CompiledModel,
    frames: &[&TabularFrame],
    chunk_rows: usize,
) -> Result<Vec<Predictions>, ServeError> {
    if frames.is_empty() {
        return Err(ServeError::EmptyBatch);
    }
    let mut scanner = ChainScanner::new(frames.to_vec(), chunk_rows)
        .map_err(|e| BackendError::unsupported(backend.name(), format!("chained frames: {e}")))?;
    let out = backend.score_prepared_stream(model, &mut scanner)?;
    Ok(split_predictions(
        out.predictions,
        frames.iter().map(|f| f.n_rows()),
    ))
}

/// Splits one prediction vector back into per-request vectors by row
/// count.
fn split_predictions(merged: Predictions, counts: impl Iterator<Item = usize>) -> Vec<Predictions> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    match merged {
        Predictions::Classes(all) => {
            for n in counts {
                out.push(Predictions::Classes(all[offset..offset + n].to_vec()));
                offset += n;
            }
            debug_assert_eq!(offset, all.len());
        }
        Predictions::Values(all) => {
            for n in counts {
                out.push(Predictions::Values(all[offset..offset + n].to_vec()));
                offset += n;
            }
            debug_assert_eq!(offset, all.len());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_backend::SklearnCpu;
    use mlscore_forest::{ForestConfig, RandomForest};

    fn frame(seed: u64, rows: usize, n_features: usize) -> TabularFrame {
        let data = (0..rows * n_features)
            .map(|i| ((i as u64 * 2_654_435_761 + seed * 97) % 1_000) as f32 / 1_000.0)
            .collect();
        TabularFrame::from_rows(data, n_features).unwrap()
    }

    #[test]
    fn merged_scoring_is_bit_exact_per_request() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(16, 4, 3).with_depth(6), 21);
        let backend = SklearnCpu::with_threads(2);
        let frames = [frame(1, 13, 4), frame(2, 1, 4), frame(3, 40, 4)];
        let refs: Vec<&TabularFrame> = frames.iter().collect();
        let split = score_merged(&backend, &forest, &refs).unwrap();
        assert_eq!(split.len(), 3);
        for (frame, got) in frames.iter().zip(&split) {
            let solo = forest.predict_batch(frame.as_slice());
            assert_eq!(got, &solo);
        }
    }

    #[test]
    fn regression_predictions_split_too() {
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(8, 5).with_depth(5), 4);
        let backend = SklearnCpu::with_threads(1);
        let frames = [frame(7, 6, 5), frame(8, 9, 5)];
        let refs: Vec<&TabularFrame> = frames.iter().collect();
        let split = score_merged(&backend, &forest, &refs).unwrap();
        assert_eq!(split[0].len(), 6);
        assert_eq!(split[1].len(), 9);
        assert_eq!(split[0], forest.predict_batch(frames[0].as_slice()));
    }

    #[test]
    fn fused_merge_is_bit_exact_with_staged_merge() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(16, 4, 3).with_depth(6), 21);
        let backend = SklearnCpu::with_threads(2);
        let bundle = mlscore_forest::ModelBundle::serialize(&forest);
        let model = mlscore_backend::compile(&backend, &bundle).unwrap();
        let frames = [frame(1, 13, 4), frame(2, 1, 4), frame(3, 40, 4)];
        let refs: Vec<&TabularFrame> = frames.iter().collect();
        let staged = score_merged(&backend, &forest, &refs).unwrap();
        for chunk_rows in [1, 8, 512] {
            let fused = score_merged_stream(&backend, &model, &refs, chunk_rows).unwrap();
            assert_eq!(fused, staged, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn fused_merge_rejects_empty_and_mixed_widths() {
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(4, 3).with_depth(4), 1);
        let backend = SklearnCpu::with_threads(1);
        let bundle = mlscore_forest::ModelBundle::serialize(&forest);
        let model = mlscore_backend::compile(&backend, &bundle).unwrap();
        assert!(matches!(
            score_merged_stream(&backend, &model, &[], 64),
            Err(ServeError::EmptyBatch)
        ));
        let a = frame(1, 4, 3);
        let b = frame(2, 4, 5);
        assert!(matches!(
            score_merged_stream(&backend, &model, &[&a, &b], 64),
            Err(ServeError::Backend(_))
        ));
    }

    #[test]
    fn empty_merge_is_an_error_not_a_panic() {
        let forest = RandomForest::synthetic_full(&ForestConfig::regression(4, 3).with_depth(4), 1);
        let backend = SklearnCpu::with_threads(1);
        assert!(matches!(
            score_merged(&backend, &forest, &[]),
            Err(ServeError::EmptyBatch)
        ));
    }

    #[test]
    fn disabled_config_caps_batches_at_one() {
        let on = CoalesceConfig::default();
        let off = CoalesceConfig::disabled();
        assert!(on.effective_max_requests() > 1);
        assert_eq!(off.effective_max_requests(), 1);
        assert_eq!(off.effective_max_records(), u64::MAX);
        assert!(on.effective_max_records() < u64::MAX);
    }
}
