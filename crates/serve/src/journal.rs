//! The structured request-lifecycle journal.
//!
//! The engine emits one [`JournalEntry`] per lifecycle transition —
//! arrival, admission, shed, coalesce, dispatch, completion — each
//! stamped with its simulated instant and the [`RequestId`] it concerns
//! (lint T002 enforces that no emit site drops the id). The journal is
//! the ground truth a run report reconstructs stage breakdowns from: a
//! `completed` entry carries the request's full stage split, recorded in
//! the same order the engine folds latencies into its histograms, so a
//! reconstruction refolds to bit-identical distributions.
//!
//! [`RequestJournal::to_jsonl`] renders the journal as JSON Lines with
//! fixed-width timestamps, so the same run always serializes to the same
//! bytes.

use std::fmt::Write as _;

use mlscore_sim::{SimDuration, SimInstant};
use mlscore_telemetry::json::write_escaped;

use crate::request::{QueryClass, RequestId};
use crate::slo::SloAlert;

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Bounced at a full queue (`ShedPolicy::RejectNew`).
    Rejected,
    /// Evicted from a full queue by a newer arrival
    /// (`ShedPolicy::DropOldest`).
    DroppedOldest,
    /// Queue deadline lapsed before dispatch.
    TimedOut,
    /// No backend in the roster supports the model.
    Unservable,
}

impl ShedReason {
    /// Stable journal name.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::Rejected => "rejected",
            ShedReason::DroppedOldest => "dropped-oldest",
            ShedReason::TimedOut => "timed-out",
            ShedReason::Unservable => "unservable",
        }
    }
}

/// One lifecycle transition.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalKind {
    /// The request entered the system.
    Arrival {
        /// Its query class.
        class: QueryClass,
        /// Its model (catalog index).
        model: usize,
        /// Records it carries.
        records: u64,
    },
    /// The admission queue accepted it.
    Admitted,
    /// It left without completing.
    Shed {
        /// Why.
        reason: ShedReason,
    },
    /// It merged into a multi-request micro-batch.
    Coalesced {
        /// Engine-global batch sequence number.
        batch: u64,
        /// Requests merged into the batch.
        size: usize,
    },
    /// Its batch started a device pass.
    Dispatched {
        /// Engine-global batch sequence number.
        batch: u64,
        /// Backend that runs the pass.
        backend: String,
        /// Device the pass reserved.
        device: String,
    },
    /// It finished scoring, with the full stage split of its sojourn.
    Completed {
        /// Arrival-to-completion latency.
        latency: SimDuration,
        /// Arrival to device-pass start.
        queue_wait: SimDuration,
        /// Compile / cache-lookup charge of its pass.
        prepare: SimDuration,
        /// Overhead stages of its pass.
        setup: SimDuration,
        /// Transfer stages of its pass.
        transfer: SimDuration,
        /// Compute stages of its pass.
        compute: SimDuration,
        /// Pipeline-drain stages of its pass.
        drain: SimDuration,
    },
}

impl JournalKind {
    /// Stable journal event name.
    pub fn name(&self) -> &'static str {
        match self {
            JournalKind::Arrival { .. } => "arrival",
            JournalKind::Admitted => "admitted",
            JournalKind::Shed { .. } => "shed",
            JournalKind::Coalesced { .. } => "coalesced",
            JournalKind::Dispatched { .. } => "dispatched",
            JournalKind::Completed { .. } => "completed",
        }
    }
}

/// One journal line: an instant, a request, a transition.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Simulated instant of the transition (completions are stamped with
    /// the completion instant, which lies past the dispatch instant that
    /// emitted them — the journal is emission-ordered, not time-sorted).
    pub at: SimInstant,
    /// The request the transition concerns.
    pub id: RequestId,
    /// What happened.
    pub kind: JournalKind,
}

/// An append-only journal of request-lifecycle events plus the run's SLO
/// alerts, in deterministic emission order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestJournal {
    entries: Vec<JournalEntry>,
    alerts: Vec<SloAlert>,
}

impl RequestJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one lifecycle transition for request `id` at instant `at`.
    pub fn emit(&mut self, at: SimInstant, id: RequestId, kind: JournalKind) {
        self.entries.push(JournalEntry { at, id, kind });
    }

    /// Appends one SLO alert (rendered after the lifecycle entries).
    pub fn alert(&mut self, alert: SloAlert) {
        self.alerts.push(alert);
    }

    /// The lifecycle entries, in emission order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// The SLO alerts, in scan order.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Number of lifecycle entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no lifecycle entry was emitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the journal as JSON Lines: one object per lifecycle entry
    /// in emission order, then one per SLO alert. Timestamps are seconds
    /// with nine fixed decimals, so equal runs serialize byte-identically.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let _ = write!(
                out,
                "{{\"t\":{:.9},\"id\":{},\"event\":\"{}\"",
                entry.at.as_secs(),
                entry.id,
                entry.kind.name(),
            );
            match &entry.kind {
                JournalKind::Arrival {
                    class,
                    model,
                    records,
                } => {
                    let _ = write!(
                        out,
                        ",\"class\":\"{}\",\"model\":{model},\"records\":{records}",
                        class.name(),
                    );
                }
                JournalKind::Admitted => {}
                JournalKind::Shed { reason } => {
                    let _ = write!(out, ",\"reason\":\"{}\"", reason.name());
                }
                JournalKind::Coalesced { batch, size } => {
                    let _ = write!(out, ",\"batch\":{batch},\"size\":{size}");
                }
                JournalKind::Dispatched {
                    batch,
                    backend,
                    device,
                } => {
                    let _ = write!(out, ",\"batch\":{batch},\"backend\":");
                    write_escaped(&mut out, backend);
                    out.push_str(",\"device\":");
                    write_escaped(&mut out, device);
                }
                JournalKind::Completed {
                    latency,
                    queue_wait,
                    prepare,
                    setup,
                    transfer,
                    compute,
                    drain,
                } => {
                    let _ = write!(
                        out,
                        ",\"latency\":{:.9},\"queue_wait\":{:.9},\"prepare\":{:.9},\
                         \"setup\":{:.9},\"transfer\":{:.9},\"compute\":{:.9},\"drain\":{:.9}",
                        latency.as_secs(),
                        queue_wait.as_secs(),
                        prepare.as_secs(),
                        setup.as_secs(),
                        transfer.as_secs(),
                        compute.as_secs(),
                        drain.as_secs(),
                    );
                }
            }
            out.push_str("}\n");
        }
        for alert in &self.alerts {
            let _ = write!(
                out,
                "{{\"t\":{:.9},\"event\":\"slo_alert\",\"class\":",
                alert.at.as_secs(),
            );
            write_escaped(&mut out, &alert.class);
            let _ = writeln!(
                out,
                ",\"window\":{},\"attainment\":{:.6},\"burn_rate\":{:.6}}}",
                alert.window, alert.attainment, alert.burn_rate,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at_ms(v: f64) -> SimInstant {
        SimInstant::ZERO + ms(v)
    }

    fn sample() -> RequestJournal {
        let mut journal = RequestJournal::new();
        let id = 3;
        journal.emit(
            at_ms(1.0),
            id,
            JournalKind::Arrival {
                class: QueryClass::Interactive,
                model: 2,
                records: 10,
            },
        );
        journal.emit(at_ms(1.0), id, JournalKind::Admitted);
        journal.emit(
            at_ms(2.0),
            id,
            JournalKind::Dispatched {
                batch: 0,
                backend: "FPGA".into(),
                device: "fpga".into(),
            },
        );
        journal.emit(
            at_ms(2.0),
            id,
            JournalKind::Completed {
                latency: ms(4.0),
                queue_wait: ms(1.0),
                prepare: ms(0.5),
                setup: ms(0.5),
                transfer: ms(1.0),
                compute: ms(0.75),
                drain: ms(0.25),
            },
        );
        journal
    }

    #[test]
    fn jsonl_lines_parse_and_carry_ids() {
        let journal = sample();
        assert_eq!(journal.len(), 4);
        let jsonl = journal.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let doc = mlscore_telemetry::json::parse(line).expect("valid JSON line");
            assert_eq!(doc.get("id").and_then(|v| v.as_f64()), Some(3.0));
            assert!(doc.get("t").is_some());
            assert!(doc.get("event").is_some());
        }
        assert!(lines[0].contains("\"event\":\"arrival\""));
        assert!(lines[0].contains("\"class\":\"interactive\""));
        assert!(lines[3].contains("\"latency\":0.004000000"));
        assert!(lines[3].contains("\"queue_wait\":0.001000000"));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(sample().to_jsonl(), sample().to_jsonl());
    }

    #[test]
    fn alerts_render_after_lifecycle_entries() {
        let mut journal = sample();
        journal.alert(SloAlert {
            window: 7,
            at: at_ms(700.0),
            class: "interactive".into(),
            attainment: 0.5,
            burn_rate: 50.0,
        });
        let jsonl = journal.to_jsonl();
        let last = jsonl.lines().last().expect("lines");
        assert!(last.contains("\"event\":\"slo_alert\""));
        assert!(last.contains("\"window\":7"));
        assert!(last.contains("\"burn_rate\":50.000000"));
        let doc = mlscore_telemetry::json::parse(last).expect("valid JSON");
        assert_eq!(doc.get("attainment").and_then(|v| v.as_f64()), Some(0.5));
    }

    #[test]
    fn shed_reasons_have_stable_names() {
        let mut journal = RequestJournal::new();
        for (id, reason) in [
            ShedReason::Rejected,
            ShedReason::DroppedOldest,
            ShedReason::TimedOut,
            ShedReason::Unservable,
        ]
        .into_iter()
        .enumerate()
        {
            journal.emit(at_ms(0.0), id as u64, JournalKind::Shed { reason });
        }
        let jsonl = journal.to_jsonl();
        for name in ["rejected", "dropped-oldest", "timed-out", "unservable"] {
            assert!(jsonl.contains(&format!("\"reason\":\"{name}\"")), "{name}");
        }
    }
}
