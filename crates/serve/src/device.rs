//! The device-contention model: which backends share which physical
//! device, and how many concurrent passes each device admits.
//!
//! Contention is what separates a serving simulation from the legacy
//! back-to-back replay: the FPGA is exclusive (one resident bitstream, one
//! pass at a time), a GPU overlaps a few passes on independent streams,
//! and the CPU engines share the host's executor seats. Each device is
//! backed by a [`DeviceLedger`](mlscore_sim::DeviceLedger) slot pool in
//! the engine; this module only describes the topology.

use mlscore_backend::ScoringBackend;

/// One physical device: a name (the Perfetto lane suffix) and how many
/// passes it runs concurrently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSpec {
    /// Display name (`CPU`, `GPU`, `FPGA`, `serial`).
    pub name: String,
    /// Concurrent passes (ledger slots): executor seats on the CPU,
    /// streams on the GPU, 1 on the FPGA.
    pub slots: usize,
}

/// Maps each backend in a roster to the device it occupies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceRoster {
    devices: Vec<DeviceSpec>,
    /// `by_backend[i]` = device index backing backend `i`.
    by_backend: Vec<usize>,
}

impl DeviceRoster {
    /// The paper topology: all `CPU*` backends share one CPU device with
    /// `cpu_seats` concurrent passes, all `GPU*` backends share one GPU
    /// device with `gpu_streams` streams, and every other backend (the
    /// FPGA) gets an exclusive single-slot device of its own name.
    pub fn paper_default(
        backends: &[Box<dyn ScoringBackend>],
        cpu_seats: usize,
        gpu_streams: usize,
    ) -> Self {
        let mut devices: Vec<DeviceSpec> = Vec::new();
        let mut by_backend = Vec::with_capacity(backends.len());
        for backend in backends {
            let (name, slots) = if backend.name().starts_with("CPU") {
                ("CPU".to_string(), cpu_seats.max(1))
            } else if backend.name().starts_with("GPU") {
                ("GPU".to_string(), gpu_streams.max(1))
            } else {
                (backend.name().to_string(), 1)
            };
            let device = match devices.iter().position(|d| d.name == name) {
                Some(i) => i,
                None => {
                    devices.push(DeviceSpec { name, slots });
                    devices.len() - 1
                }
            };
            by_backend.push(device);
        }
        Self {
            devices,
            by_backend,
        }
    }

    /// A degenerate topology for legacy-replay equivalence: every backend
    /// shares one single-slot device, so the engine serializes all passes
    /// back to back exactly like the deprecated `sched::trace::replay`
    /// loop.
    pub fn serial(backends: &[Box<dyn ScoringBackend>]) -> Self {
        Self {
            devices: vec![DeviceSpec {
                name: "serial".to_string(),
                slots: 1,
            }],
            by_backend: vec![0; backends.len()],
        }
    }

    /// The devices, in first-appearance order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// The device index backing backend `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a roster backend index — the mapping is built
    /// with exactly one entry per backend at construction.
    pub fn device_of(&self, backend: usize) -> usize {
        // analyze: allow(P001, reason="by_backend is built with one entry per roster backend at construction; a miss is an engine bug, not load")
        self.by_backend[backend]
    }

    /// The device name backing backend `i` (`"?"` for an index outside
    /// the roster).
    pub fn device_name(&self, backend: usize) -> &str {
        self.by_backend
            .get(backend)
            .and_then(|&d| self.devices.get(d))
            .map_or("?", |d| d.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_sched::paper_backends;

    #[test]
    fn paper_roster_folds_six_backends_onto_three_devices() {
        let backends = paper_backends();
        let roster = DeviceRoster::paper_default(&backends, 52, 4);
        assert_eq!(
            roster
                .devices()
                .iter()
                .map(|d| (d.name.as_str(), d.slots))
                .collect::<Vec<_>>(),
            [("CPU", 52), ("GPU", 4), ("FPGA", 1)]
        );
        // CPU_SKLearn, CPU_ONNX x2 -> CPU; GPU-HB, GPU-RAPIDS -> GPU; FPGA.
        let names: Vec<&str> = (0..backends.len()).map(|i| roster.device_name(i)).collect();
        assert_eq!(names, ["CPU", "CPU", "CPU", "GPU", "GPU", "FPGA"]);
        assert_eq!(roster.device_of(5), 2);
    }

    #[test]
    fn serial_roster_shares_one_slot() {
        let backends = paper_backends();
        let roster = DeviceRoster::serial(&backends);
        assert_eq!(roster.devices().len(), 1);
        assert_eq!(roster.devices()[0].slots, 1);
        for i in 0..backends.len() {
            assert_eq!(roster.device_of(i), 0);
            assert_eq!(roster.device_name(i), "serial");
        }
    }
}
