//! Property tests for the serving engine: request conservation under
//! arbitrary configurations, bit-exactness of coalesced scoring, and the
//! FIFO-within-model dispatch guarantee under batch stealing.

use proptest::prelude::*;

use mlscore_backend::{OnnxCpu, ScoringBackend, SklearnCpu};
use mlscore_data::TabularFrame;
use mlscore_forest::{ForestConfig, RandomForest};
use mlscore_sched::paper_backends;
use mlscore_serve::{
    score_merged, ArrivalProcess, ClassSlo, CoalesceConfig, ModelCatalog, QueueConfig, ServeConfig,
    ServeEngine, ServePolicy, ShedPolicy, WorkloadSpec,
};
use mlscore_sim::SimDuration;
use mlscore_telemetry::Tracer;

fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        Just(ArrivalProcess::Batch),
        (20.0f64..5_000.0).prop_map(|rate_qps| ArrivalProcess::OpenPoisson { rate_qps }),
        (1usize..6, 0.1f64..20.0).prop_map(|(clients, think_ms)| ArrivalProcess::ClosedLoop {
            clients,
            think: SimDuration::from_millis(think_ms),
        }),
    ]
}

fn arb_config() -> impl Strategy<Value = ServeConfig> {
    (
        (
            prop_oneof![Just(None::<usize>), (0usize..12).prop_map(Some)],
            prop_oneof![Just(ShedPolicy::RejectNew), Just(ShedPolicy::DropOldest)],
            prop_oneof![Just(None::<f64>), (0.05f64..50.0).prop_map(Some)],
        ),
        (any::<bool>(), 1usize..8, 0.0f64..5.0),
        (
            prop_oneof![
                Just(ServePolicy::Oracle),
                (0.1f64..0.9).prop_map(|alpha| ServePolicy::Adaptive { alpha }),
            ],
            any::<bool>(),
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                (capacity, shed, deadline_ms),
                (coalesce_on, max_requests, hold_ms),
                (policy, serial_device, charge_compile),
            )| {
                ServeConfig {
                    queue: QueueConfig {
                        capacity,
                        shed,
                        interactive: ClassSlo {
                            queue_deadline: deadline_ms.map(SimDuration::from_millis),
                            latency_slo: None,
                        },
                        analytical: ClassSlo::default(),
                    },
                    coalesce: CoalesceConfig {
                        enabled: coalesce_on,
                        max_requests,
                        max_records: 1_000_000,
                        hold: SimDuration::from_millis(hold_ms),
                    },
                    policy,
                    cpu_seats: 4,
                    gpu_streams: 2,
                    serial_device,
                    charge_compile,
                    cache_entries: 4,
                    observe: mlscore_serve::ObserveConfig::default(),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every offered request is accounted for exactly once — completed,
    /// rejected, dropped, timed out, or unservable — no matter the queue
    /// bound, shed policy, deadlines, coalescing, policy, or topology.
    #[test]
    fn requests_are_conserved_under_any_configuration(
        config in arb_config(),
        arrivals in arb_arrivals(),
        queries in 1usize..60,
        seed in 0u64..1 << 16,
    ) {
        let engine = ServeEngine::new(paper_backends(), ModelCatalog::paper_mix(), config);
        let spec = WorkloadSpec { queries, seed, arrivals };
        let report = engine.run(&spec, &Tracer::disabled()).unwrap();
        prop_assert!(report.is_conserved());
        prop_assert_eq!(report.offered, queries as u64);
        prop_assert_eq!(
            report.completed + report.shed() + report.unservable,
            queries as u64
        );
        // Coalescing off means strictly one request per pass.
        if !engine.run(&spec, &Tracer::disabled()).unwrap().is_conserved() {
            unreachable!("determinism: the rerun conserves iff the first did");
        }
    }

    /// Scoring `k` same-model requests as one concatenated pass and
    /// splitting the predictions is bit-identical to scoring each request
    /// alone — on both a single- and a multi-threaded CPU backend.
    #[test]
    fn coalesced_scoring_is_bit_exact(
        row_counts in proptest::collection::vec(1usize..24, 1..6),
        trees in 1usize..24,
        depth in 2usize..7,
        seed in 0u64..1 << 16,
        multi_class in any::<bool>(),
    ) {
        let n_features = 4;
        let cfg = if multi_class {
            ForestConfig::classification(trees, n_features, 3)
        } else {
            ForestConfig::regression(trees, n_features)
        }
        .with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let frames: Vec<TabularFrame> = row_counts
            .iter()
            .enumerate()
            .map(|(i, &rows)| {
                let data = (0..rows * n_features)
                    .map(|j| {
                        let x = (j as u64)
                            .wrapping_mul(2_654_435_761)
                            .wrapping_add(seed ^ i as u64);
                        (x % 1_000) as f32 / 1_000.0
                    })
                    .collect();
                TabularFrame::from_rows(data, n_features).unwrap()
            })
            .collect();
        let refs: Vec<&TabularFrame> = frames.iter().collect();
        let backends: [Box<dyn ScoringBackend>; 2] = [
            Box::new(SklearnCpu::with_threads(1)),
            Box::new(OnnxCpu::with_threads(4)),
        ];
        for backend in &backends {
            let split = score_merged(backend.as_ref(), &forest, &refs).unwrap();
            prop_assert_eq!(split.len(), frames.len());
            for (frame, got) in frames.iter().zip(&split) {
                let solo = forest.predict_batch(frame.as_slice());
                prop_assert_eq!(got, &solo);
            }
        }
    }

    /// The coalescer may steal later same-model requests past earlier
    /// other-model ones, but two requests for the same model always
    /// dispatch in arrival order, and requests inside one pass are
    /// contiguous in the dispatch log.
    #[test]
    fn same_model_dispatch_order_is_fifo_under_stealing(
        config in arb_config(),
        arrivals in arb_arrivals(),
        queries in 2usize..60,
        seed in 0u64..1 << 16,
    ) {
        let engine = ServeEngine::new(paper_backends(), ModelCatalog::paper_mix(), config);
        let spec = WorkloadSpec { queries, seed, arrivals };
        let report = engine.run(&spec, &Tracer::disabled()).unwrap();
        let mut last_id_for_model = std::collections::HashMap::new();
        let mut last_batch = None;
        for d in &report.dispatches {
            // Request ids are issued in arrival order, so FIFO-within-model
            // means ids strictly increase per model in the dispatch log.
            if let Some(prev) = last_id_for_model.insert(d.model, d.id) {
                prop_assert!(prev < d.id, "model {} dispatched {} after {}", d.model, d.id, prev);
            }
            // Batch sequence numbers never interleave: the log is grouped
            // by pass, in dispatch order.
            if let Some(prev) = last_batch {
                prop_assert!(d.batch >= prev);
            }
            last_batch = Some(d.batch);
        }
        prop_assert!(report.is_conserved());
    }
}
