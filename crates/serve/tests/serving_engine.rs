//! Engine-level error handling and determinism regressions.
//!
//! A malformed [`WorkloadSpec`] is load a serving endpoint refuses with an
//! error, never a panic — the serve crate's `P001` contract. And two runs
//! of the same spec must agree byte for byte, down to the exported
//! Perfetto trace — the serve crate's `D00x` contract.

use mlscore_sched::paper_backends;
use mlscore_serve::{
    ArrivalProcess, ModelCatalog, ServeConfig, ServeEngine, ServeError, WorkloadSpec,
};
use mlscore_sim::SimDuration;
use mlscore_telemetry::{perfetto, Tracer};

fn engine() -> ServeEngine {
    ServeEngine::new(
        paper_backends(),
        ModelCatalog::paper_mix(),
        ServeConfig::default(),
    )
}

fn spec(arrivals: ArrivalProcess) -> WorkloadSpec {
    WorkloadSpec {
        queries: 25,
        seed: 11,
        arrivals,
    }
}

#[test]
fn malformed_workloads_error_instead_of_panicking() {
    let engine = engine();
    let malformed = [
        ArrivalProcess::OpenPoisson { rate_qps: 0.0 },
        ArrivalProcess::OpenPoisson { rate_qps: -250.0 },
        ArrivalProcess::OpenPoisson {
            rate_qps: f64::INFINITY,
        },
        ArrivalProcess::OpenPoisson { rate_qps: f64::NAN },
        // A negative or NaN think time is unconstructible through
        // SimDuration::from_secs (it debug-asserts), so the zero-client
        // loop is the reachable malformed closed-loop spec.
        ArrivalProcess::ClosedLoop {
            clients: 0,
            think: SimDuration::from_secs(0.01),
        },
    ];
    for arrivals in malformed {
        let err = engine
            .run(&spec(arrivals), &Tracer::disabled())
            .expect_err("a malformed spec must be refused");
        assert!(
            matches!(err, ServeError::InvalidWorkload { .. }),
            "{arrivals:?} yielded the wrong error: {err}"
        );
        // The error formats into something a caller can log.
        assert!(format!("{err}").starts_with("invalid workload: "));
    }
}

#[test]
fn valid_workloads_still_run() {
    let report = engine()
        .run(
            &spec(ArrivalProcess::OpenPoisson { rate_qps: 400.0 }),
            &Tracer::disabled(),
        )
        .expect("a valid spec runs");
    assert!(report.is_conserved());
}

#[test]
fn traced_reruns_are_byte_identical() {
    let spec = spec(ArrivalProcess::OpenPoisson { rate_qps: 900.0 });
    let render = || {
        let engine = engine();
        let tracer = Tracer::new();
        let report = engine.run(&spec, &tracer).expect("valid spec");
        let json = perfetto::to_json(&tracer.take());
        (report, json)
    };
    let (a, trace_a) = render();
    let (b, trace_b) = render();
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.dispatches, b.dispatches);
    assert_eq!(
        trace_a, trace_b,
        "the exported Perfetto trace must be byte-identical across reruns"
    );
    assert!(!trace_a.is_empty());
}
