//! Property tests for the request-lifecycle observability layer: window
//! rotation at exact edges, merge determinism of the windowed series,
//! bit-exact reconstruction of the engine's latency distributions from the
//! journal, and byte-identical journal/alert output across reruns.

use std::collections::BTreeMap;

use proptest::prelude::*;

use mlscore_sched::paper_backends;
use mlscore_serve::{
    ArrivalProcess, ClassSlo, CoalesceConfig, JournalKind, ModelCatalog, ObserveConfig,
    QueueConfig, ServeConfig, ServeEngine, ShedPolicy, WorkloadSpec,
};
use mlscore_sim::{SimDuration, SimInstant};
use mlscore_telemetry::{Histogram, TimeSeriesRecorder, Tracer};

/// One synthetic series event (no busy time: float-sum order would make
/// exact equality too strong; busy smearing has its own deterministic
/// test below).
#[derive(Debug, Clone)]
enum Ev {
    Arrival {
        t: f64,
        interactive: bool,
    },
    Completion {
        t: f64,
        interactive: bool,
        latency_ms: f64,
        violated: bool,
    },
    Shed {
        t: f64,
        interactive: bool,
    },
    Depth {
        t: f64,
        depth: u64,
    },
}

impl Ev {
    fn apply(&self, rec: &mut TimeSeriesRecorder) {
        let class = |i: bool| if i { "interactive" } else { "analytical" };
        match *self {
            Ev::Arrival { t, interactive } => {
                rec.record_arrival(SimInstant::from_secs(t), class(interactive));
            }
            Ev::Completion {
                t,
                interactive,
                latency_ms,
                violated,
            } => rec.record_completion(
                SimInstant::from_secs(t),
                class(interactive),
                SimDuration::from_millis(latency_ms),
                violated,
            ),
            Ev::Shed { t, interactive } => {
                rec.record_shed(SimInstant::from_secs(t), class(interactive));
            }
            Ev::Depth { t, depth } => rec.record_queue_depth(SimInstant::from_secs(t), depth),
        }
    }
}

fn arb_event() -> impl Strategy<Value = Ev> {
    let t = 0.0f64..8.0;
    prop_oneof![
        (t.clone(), any::<bool>()).prop_map(|(t, interactive)| Ev::Arrival { t, interactive }),
        (t.clone(), any::<bool>(), 0.01f64..500.0, any::<bool>()).prop_map(
            |(t, interactive, latency_ms, violated)| Ev::Completion {
                t,
                interactive,
                latency_ms,
                violated,
            }
        ),
        (t.clone(), any::<bool>()).prop_map(|(t, interactive)| Ev::Shed { t, interactive }),
        (t, 0u64..64).prop_map(|(t, depth)| Ev::Depth { t, depth }),
    ]
}

fn record_all(window: SimDuration, events: &[Ev]) -> TimeSeriesRecorder {
    let mut rec = TimeSeriesRecorder::new(window);
    for ev in events {
        ev.apply(&mut rec);
    }
    rec
}

fn serve_spec(queries: usize, seed: u64, rate_qps: f64) -> WorkloadSpec {
    WorkloadSpec {
        queries,
        seed,
        arrivals: ArrivalProcess::OpenPoisson { rate_qps },
    }
}

/// An overload-ish engine so journals exercise shed paths too.
fn engine(capacity: Option<usize>, shed: ShedPolicy, coalesce: bool) -> ServeEngine {
    ServeEngine::new(
        paper_backends(),
        ModelCatalog::paper_mix(),
        ServeConfig {
            queue: QueueConfig {
                capacity,
                shed,
                interactive: ClassSlo {
                    latency_slo: Some(SimDuration::from_millis(50.0)),
                    ..ClassSlo::default()
                },
                analytical: ClassSlo {
                    latency_slo: Some(SimDuration::from_secs(2.0)),
                    ..ClassSlo::default()
                },
                ..QueueConfig::default()
            },
            coalesce: CoalesceConfig {
                enabled: coalesce,
                ..CoalesceConfig::default()
            },
            observe: ObserveConfig::default(),
            ..ServeConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With an integer-second window every edge instant `k * w` is exactly
    /// representable, so the half-open `[k*w, (k+1)*w)` semantics is exact:
    /// an event precisely on the edge opens window `k`, and the midpoint
    /// of the previous window stays in `k - 1`.
    #[test]
    fn edge_events_open_the_new_window(
        window_secs in 1u64..10,
        k in 0u64..1_000,
    ) {
        let w = SimDuration::from_secs(window_secs as f64);
        let rec = TimeSeriesRecorder::new(w);
        let edge = rec.window_start(k);
        prop_assert_eq!(rec.window_index(edge), k);
        let mut rec = rec;
        rec.record_completion(edge, "interactive", SimDuration::from_millis(1.0), false);
        let touched: Vec<u64> = rec.windows().map(|(i, _)| i).collect();
        prop_assert_eq!(touched, vec![k]);
        if k > 0 {
            // Half a window before the edge: exactly representable too
            // (integer-seconds window halves without rounding).
            let inside_prev = SimInstant::from_secs(edge.as_secs() - window_secs as f64 * 0.5);
            prop_assert_eq!(rec.window_index(inside_prev), k - 1);
        }
    }

    /// Every event lands in exactly one window — even for adversarial
    /// float instants sitting on (or a rounding error away from) an edge —
    /// and window assignment is monotone in time.
    #[test]
    fn events_land_in_exactly_one_window(
        window_ms in 1u64..500,
        events in proptest::collection::vec(arb_event(), 1..80),
        edge_multiples in proptest::collection::vec(0u64..1_000, 0..20),
    ) {
        let w = SimDuration::from_millis(window_ms as f64);
        let mut all = events;
        // Adversarial edges: `k * w` products that float rounding may pin
        // to either side of the boundary. Whichever side they land on,
        // they must be counted exactly once.
        for k in edge_multiples {
            all.push(Ev::Completion {
                t: w.as_secs() * k as f64,
                interactive: true,
                latency_ms: 1.0,
                violated: false,
            });
        }
        let rec = record_all(w, &all);
        let completions: u64 = rec.windows().map(|(_, win)| win.completions()).sum();
        let arrivals: u64 = rec.windows().map(|(_, win)| win.arrivals).sum();
        let shed: u64 = rec.windows().map(|(_, win)| win.shed()).sum();
        let want = |f: &dyn Fn(&Ev) -> bool| all.iter().filter(|e| f(e)).count() as u64;
        prop_assert_eq!(completions, want(&|e| matches!(e, Ev::Completion { .. })));
        prop_assert_eq!(arrivals, want(&|e| matches!(e, Ev::Arrival { .. })));
        prop_assert_eq!(shed, want(&|e| matches!(e, Ev::Shed { .. })));
        // Monotone: sorting instants sorts their window indices.
        let mut instants: Vec<f64> = all
            .iter()
            .map(|e| match *e {
                Ev::Arrival { t, .. }
                | Ev::Completion { t, .. }
                | Ev::Shed { t, .. }
                | Ev::Depth { t, .. } => t,
            })
            .collect();
        instants.sort_by(f64::total_cmp);
        let indices: Vec<u64> = instants
            .iter()
            .map(|&t| rec.window_index(SimInstant::from_secs(t)))
            .collect();
        prop_assert!(indices.windows(2).all(|p| p[0] <= p[1]));
    }

    /// Splitting an event stream at any point, recording the halves into
    /// separate recorders, and merging them reproduces the unsplit
    /// recording exactly — counters, histograms, and peaks all agree —
    /// and the merge of counters is commutative.
    #[test]
    fn merge_of_a_split_stream_equals_the_unsplit_recording(
        window_ms in 1u64..500,
        events in proptest::collection::vec(arb_event(), 1..80),
        split in 0usize..80,
    ) {
        let w = SimDuration::from_millis(window_ms as f64);
        let split = split.min(events.len());
        let whole = record_all(w, &events);
        let mut left = record_all(w, &events[..split]);
        let right = record_all(w, &events[split..]);
        let mut swapped = record_all(w, &events[split..]);
        let left_orig = record_all(w, &events[..split]);
        left.merge(&right);
        swapped.merge(&left_orig);
        // The in-order merge equals the unsplit recording exactly, except
        // `queue_depth_last`, which keeps the merged-in recorder's value
        // (the unsplit stream's last write may sit in the left half).
        prop_assert_eq!(whole.len(), left.len());
        for ((wi, ww), (li, lw)) in whole.windows().zip(left.windows()) {
            prop_assert_eq!(wi, li);
            prop_assert_eq!(ww.arrivals, lw.arrivals);
            prop_assert_eq!(ww.queue_depth_peak, lw.queue_depth_peak);
            prop_assert_eq!(&ww.classes, &lw.classes);
            prop_assert_eq!(&ww.busy, &lw.busy);
        }
        // Merge order does not change any counter, peak, or histogram.
        prop_assert_eq!(left.len(), swapped.len());
        for ((ai, aw), (bi, bw)) in left.windows().zip(swapped.windows()) {
            prop_assert_eq!(ai, bi);
            prop_assert_eq!(aw.arrivals, bw.arrivals);
            prop_assert_eq!(aw.queue_depth_peak, bw.queue_depth_peak);
            prop_assert_eq!(&aw.classes, &bw.classes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Refolding the journal's `completed` entries reproduces the engine's
    /// latency histograms bit-exactly — overall and per class — and the
    /// journal's lifecycle counts match the report's conservation
    /// counters.
    #[test]
    fn journal_reconstructs_engine_latencies_bit_exactly(
        queries in 1usize..60,
        seed in 0u64..1 << 16,
        rate_qps in 100.0f64..4_000.0,
        capacity in prop_oneof![Just(None::<usize>), (1usize..24).prop_map(Some)],
        drop_oldest in any::<bool>(),
        coalesce in any::<bool>(),
    ) {
        let shed = if drop_oldest { ShedPolicy::DropOldest } else { ShedPolicy::RejectNew };
        let report = engine(capacity, shed, coalesce)
            .run(&serve_spec(queries, seed, rate_qps), &Tracer::disabled())
            .unwrap();
        let mut overall = Histogram::new();
        let mut by_class: BTreeMap<String, Histogram> = BTreeMap::new();
        let mut arrival_class: BTreeMap<u64, String> = BTreeMap::new();
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        for entry in report.journal.entries() {
            *counts.entry(entry.kind.name()).or_insert(0) += 1;
            match &entry.kind {
                JournalKind::Arrival { class, .. } => {
                    arrival_class.insert(entry.id, class.name().to_string());
                }
                JournalKind::Completed { latency, .. } => {
                    overall.record(*latency);
                    let class = arrival_class.get(&entry.id).unwrap().clone();
                    by_class.entry(class).or_default().record(*latency);
                }
                _ => {}
            }
        }
        // Bit-exact: same records folded in the same order.
        prop_assert_eq!(&overall, &report.latency);
        for cr in &report.classes {
            let refolded = by_class.remove(cr.class.name()).unwrap_or_default();
            prop_assert_eq!(&refolded, &cr.latency);
        }
        // Lifecycle counts tie back to the conservation counters.
        let count = |k: &str| counts.get(k).copied().unwrap_or(0);
        prop_assert_eq!(count("arrival"), report.offered);
        prop_assert_eq!(count("admitted"), report.admitted);
        prop_assert_eq!(count("completed"), report.completed);
        prop_assert_eq!(count("shed"), report.shed() + report.unservable);
        prop_assert_eq!(count("dispatched"), report.completed);
        // The series saw the same totals the report counted.
        let series_completions: u64 =
            report.series.windows().map(|(_, w)| w.completions()).sum();
        prop_assert_eq!(series_completions, report.completed);
        // Every alert the monitor raised names a real budget burn.
        for alert in &report.alerts {
            prop_assert!(alert.attainment < 0.99);
            prop_assert!(alert.burn_rate > 2.0);
        }
    }

    /// The journal (and its JSONL rendering, alerts included) is
    /// byte-identical across reruns of the same `(spec, config)`.
    #[test]
    fn journal_jsonl_is_byte_identical_across_reruns(
        queries in 1usize..50,
        seed in 0u64..1 << 16,
        rate_qps in 100.0f64..4_000.0,
    ) {
        let spec = serve_spec(queries, seed, rate_qps);
        let a = engine(Some(16), ShedPolicy::RejectNew, true)
            .run(&spec, &Tracer::disabled())
            .unwrap();
        let b = engine(Some(16), ShedPolicy::RejectNew, true)
            .run(&spec, &Tracer::disabled())
            .unwrap();
        prop_assert_eq!(a.journal.to_jsonl(), b.journal.to_jsonl());
        prop_assert_eq!(&a.alerts, &b.alerts);
    }
}

/// Busy time recorded across several windows is smeared, not duplicated:
/// the per-window slices sum back to the full duration.
#[test]
fn busy_time_smears_across_windows_without_loss() {
    let mut rec = TimeSeriesRecorder::new(SimDuration::from_millis(100.0));
    // 0.25 s of busy time starting at 0.05 s: covers windows 0..=3.
    rec.record_busy(
        "FPGA",
        SimInstant::from_secs(0.05),
        SimDuration::from_secs(0.25),
    );
    let total: f64 = rec
        .windows()
        .flat_map(|(_, w)| w.busy.values())
        .map(|d| d.as_secs())
        .sum();
    assert!((total - 0.25).abs() < 1e-12, "smeared busy sums to {total}");
    assert_eq!(rec.len(), 3, "0.05..0.30 touches windows 0, 1, 2");
}
