//! The lint implementations.
//!
//! Every lint is a pattern over one file's significant-token stream (see
//! [`FileScan`]); none needs a full AST. Findings inside `#[cfg(test)]` /
//! `#[test]` regions are dropped (test code may panic, index, and allocate
//! freely), and findings covered by a well-formed
//! `// analyze: allow(LINT, reason=...)` are suppressed.

use crate::lexer::TokenKind;
use crate::scan::FileScan;
use crate::Finding;

/// Crates whose map contents reach a `ServingReport`, a Perfetto export,
/// or bench JSON — iteration order there must be deterministic.
const D002_CRATES: &[&str] = &["serve", "core"];
/// Crates with request paths that must return errors instead of panicking.
const P001_CRATES: &[&str] = &["serve", "pipeline", "exec"];
/// Crates whose request-lifecycle journal emits are audited: every
/// `.emit(...)` must carry the request's id, or the causal chain the
/// journal reconstructs (arrival -> ... -> completed) breaks.
const T002_CRATES: &[&str] = &["serve"];
/// Crates where plain `x[i]` indexing is flagged too. The exec kernels
/// index heavily by design and are governed by `H001` hot regions instead.
const P001_INDEX_CRATES: &[&str] = &["serve", "pipeline"];

/// Identifiers that precede `[` without forming an index expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "if", "impl",
    "in", "let", "loop", "match", "move", "mut", "pub", "ref", "return", "static", "struct",
    "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Container types whose `::new` / `::with_capacity` allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "String", "Box", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Arc", "Rc",
];
/// Methods that allocate on the callee.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "collect", "clone"];

/// The crate a workspace-relative path belongs to (`crates/serve/src/x.rs`
/// -> `serve`; anything else -> `""`).
pub fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Runs every lint over one scanned file and returns the surviving
/// findings (test regions and suppressions already applied), sorted by
/// line.
pub fn run_lints(rel_path: &str, scan: &FileScan) -> Vec<Finding> {
    let krate = crate_of(rel_path);
    let mut raw: Vec<(&'static str, u32, String)> = Vec::new();

    d001(scan, &mut raw);
    if D002_CRATES.contains(&krate) {
        d002(scan, &mut raw);
    }
    d003(scan, &mut raw);
    if P001_CRATES.contains(&krate) {
        p001(scan, P001_INDEX_CRATES.contains(&krate), &mut raw);
    }
    h001(scan, &mut raw);
    t001(scan, &mut raw);
    if T002_CRATES.contains(&krate) {
        t002(scan, &mut raw);
    }

    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|(lint, line, _)| !scan.in_test(*line) && !scan.suppressed(lint, *line))
        .map(|(lint, line, message)| Finding {
            lint: lint.to_string(),
            file: rel_path.to_string(),
            line,
            message,
        })
        .collect();

    // Malformed directives always fire: a suppression that cannot state
    // its reason must not silently rot.
    findings.extend(scan.bad_directives.iter().map(|d| Finding {
        lint: "A000".to_string(),
        file: rel_path.to_string(),
        line: d.line,
        message: d.message.clone(),
    }));

    findings.sort_by(|a, b| (a.line, &a.lint).cmp(&(b.line, &b.lint)));
    findings
}

/// D001: wall-clock reads. Simulated components must take time from
/// `SimInstant` / an injected `Clock`; only annotated measurement sites may
/// touch the real clock.
fn d001(scan: &FileScan, out: &mut Vec<(&'static str, u32, String)>) {
    for i in 0..scan.len() {
        if scan.ident(i, "Instant")
            && scan.punct(i + 1, ":")
            && scan.punct(i + 2, ":")
            && scan.ident(i + 3, "now")
        {
            out.push((
                "D001",
                scan.tok(i).line,
                "wall-clock read `Instant::now` outside an allowlisted measurement site \
                 (route through `mlscore_sim::Clock` or `SimInstant`)"
                    .to_string(),
            ));
        }
        if scan.ident(i, "SystemTime") {
            out.push((
                "D001",
                scan.tok(i).line,
                "`SystemTime` use outside an allowlisted measurement site \
                 (simulated components must use `SimInstant`)"
                    .to_string(),
            ));
        }
    }
}

/// D002: unordered map types in report/export-building crates. Their
/// iteration order is nondeterministic across runs, which leaks into
/// serialized artifacts.
fn d002(scan: &FileScan, out: &mut Vec<(&'static str, u32, String)>) {
    for i in 0..scan.len() {
        for ty in ["HashMap", "HashSet"] {
            if scan.ident(i, ty) {
                out.push((
                    "D002",
                    scan.tok(i).line,
                    format!(
                        "`{ty}` in a report-building crate: iteration order can leak into \
                         exports (use `BTreeMap`/`BTreeSet` or sort before emitting)"
                    ),
                ));
            }
        }
    }
}

/// D003: ambient or unseeded RNG construction. Every random stream must
/// derive from an explicit seed.
fn d003(scan: &FileScan, out: &mut Vec<(&'static str, u32, String)>) {
    for i in 0..scan.len() {
        for f in ["thread_rng", "from_entropy"] {
            if scan.ident(i, f) {
                out.push((
                    "D003",
                    scan.tok(i).line,
                    format!("ambient RNG `{f}`: seed explicitly (e.g. `StdRng::seed_from_u64`)"),
                ));
            }
        }
        if scan.ident(i, "rand")
            && scan.punct(i + 1, ":")
            && scan.punct(i + 2, ":")
            && scan.ident(i + 3, "random")
        {
            out.push((
                "D003",
                scan.tok(i).line,
                "ambient RNG `rand::random`: seed explicitly (e.g. `StdRng::seed_from_u64`)"
                    .to_string(),
            ));
        }
    }
}

/// P001: panic paths in request-serving code. `serve`, `pipeline`, and
/// `exec` request paths must surface the crate's error type instead.
fn p001(scan: &FileScan, flag_indexing: bool, out: &mut Vec<(&'static str, u32, String)>) {
    for i in 0..scan.len() {
        if scan.punct(i, ".")
            && (scan.ident(i + 1, "unwrap") || scan.ident(i + 1, "expect"))
            && scan.punct(i + 2, "(")
        {
            out.push((
                "P001",
                scan.tok(i + 1).line,
                format!(
                    "`.{}()` on a request path: return the crate's error type instead",
                    scan.tok(i + 1).text
                ),
            ));
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            if scan.ident(i, mac) && scan.punct(i + 1, "!") {
                out.push((
                    "P001",
                    scan.tok(i).line,
                    format!("`{mac}!` on a request path: return the crate's error type instead"),
                ));
            }
        }
        if flag_indexing && scan.punct(i, "[") && i > 0 && is_index_base(scan, i - 1) {
            if let Some(close) = scan.match_group(i, "[", "]") {
                let is_range = (i + 1..close).any(|j| scan.punct(j, ".") && scan.punct(j + 1, "."));
                if !is_range {
                    out.push((
                        "P001",
                        scan.tok(i).line,
                        "plain indexing on a request path can panic: use `.get(...)` and \
                         surface the crate's error type"
                            .to_string(),
                    ));
                }
            }
        }
    }
}

/// True when the significant token at `i` can be the base expression of an
/// index (`x[i]`, `f()[i]`, `a[i][j]`).
fn is_index_base(scan: &FileScan, i: usize) -> bool {
    let t = scan.tok(i);
    match t.kind {
        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&t.text.as_str()),
        TokenKind::Punct => t.text == ")" || t.text == "]",
        _ => false,
    }
}

/// H001: allocation inside a `// analyze: hot` region. The exec kernels
/// and flat-forest walkers must reuse scratch buffers (`clear`/`resize`),
/// never allocate per record.
fn h001(scan: &FileScan, out: &mut Vec<(&'static str, u32, String)>) {
    if scan.hot_ranges.is_empty() {
        return;
    }
    for i in 0..scan.len() {
        let line = scan.tok(i).line;
        if !scan.in_hot(line) {
            continue;
        }
        if scan.tok(i).kind == TokenKind::Ident
            && ALLOC_TYPES.contains(&scan.tok(i).text.as_str())
            && scan.punct(i + 1, ":")
            && scan.punct(i + 2, ":")
            && (scan.ident(i + 3, "new") || scan.ident(i + 3, "with_capacity"))
        {
            out.push((
                "H001",
                line,
                format!(
                    "allocation `{}::{}` in a hot region: hoist and reuse scratch buffers",
                    scan.tok(i).text,
                    scan.tok(i + 3).text
                ),
            ));
        }
        for mac in ["vec", "format"] {
            if scan.ident(i, mac) && scan.punct(i + 1, "!") {
                out.push((
                    "H001",
                    line,
                    format!("allocation `{mac}!` in a hot region: hoist and reuse scratch buffers"),
                ));
            }
        }
        if scan.punct(i, ".")
            && scan.punct(i + 2, "(")
            && ALLOC_METHODS.iter().any(|m| scan.ident(i + 1, m))
        {
            out.push((
                "H001",
                scan.tok(i + 1).line,
                format!(
                    "allocating call `.{}()` in a hot region: hoist and reuse scratch buffers",
                    scan.tok(i + 1).text
                ),
            ));
        }
    }
}

/// T001: span-guard imbalance. Every `.span(...)` builder chain must reach
/// `.finish(...)` / `.finish_after(...)`, either in the same chain or on a
/// `let`-bound guard later in the file.
fn t001(scan: &FileScan, out: &mut Vec<(&'static str, u32, String)>) {
    for i in 0..scan.len() {
        if !(scan.punct(i, ".") && scan.ident(i + 1, "span") && scan.punct(i + 2, "(")) {
            continue;
        }
        let Some(args_close) = scan.match_group(i + 2, "(", ")") else {
            continue;
        };
        if chain_reaches_finish(scan, args_close + 1) || let_bound_finish(scan, i, args_close) {
            continue;
        }
        out.push((
            "T001",
            scan.tok(i + 1).line,
            "span opened without a matching `finish`/`finish_after` \
             (every span guard must be closed)"
                .to_string(),
        ));
    }
}

/// T002: request-lifecycle journal emit without a request id. Every
/// `.emit(...)` call in the serve crate must pass the request's id (an
/// `id` / `request_id` identifier somewhere in its argument list) so the
/// journal's causal chain — arrival through completion, and the report's
/// slowest-request reconstruction — never has an anonymous link.
fn t002(scan: &FileScan, out: &mut Vec<(&'static str, u32, String)>) {
    for i in 0..scan.len() {
        if !(scan.punct(i, ".") && scan.ident(i + 1, "emit") && scan.punct(i + 2, "(")) {
            continue;
        }
        let Some(args_close) = scan.match_group(i + 2, "(", ")") else {
            continue;
        };
        let has_id =
            (i + 3..args_close).any(|j| scan.ident(j, "id") || scan.ident(j, "request_id"));
        if !has_id {
            out.push((
                "T002",
                scan.tok(i + 1).line,
                "journal emit without a request id: every lifecycle entry must carry \
                 `id`/`request_id` so the causal chain stays reconstructible"
                    .to_string(),
            ));
        }
    }
}

/// Walks a method chain starting at significant index `j` (just past a
/// call's closing paren); true if the chain contains `finish`/
/// `finish_after`.
fn chain_reaches_finish(scan: &FileScan, mut j: usize) -> bool {
    while scan.punct(j, ".") {
        if scan.ident(j + 1, "finish") || scan.ident(j + 1, "finish_after") {
            return true;
        }
        if scan.punct(j + 2, "(") {
            match scan.match_group(j + 2, "(", ")") {
                Some(close) => j = close + 1,
                None => return false,
            }
        } else {
            // Field access or `.await`; keep walking.
            j += 2;
        }
    }
    false
}

/// True when the `.span(` at significant index `dot` sits in a
/// `let name = ...` statement and `name.finish(...)` /
/// `name.finish_after(...)` appears later in the file.
fn let_bound_finish(scan: &FileScan, dot: usize, args_close: usize) -> bool {
    // Find the statement start: walk back to the nearest `;`, `{`, or `}`.
    let mut k = dot;
    while k > 0 {
        if scan.punct(k - 1, ";") || scan.punct(k - 1, "{") || scan.punct(k - 1, "}") {
            break;
        }
        k -= 1;
    }
    if !scan.ident(k, "let") {
        return false;
    }
    let name_idx = if scan.ident(k + 1, "mut") {
        k + 2
    } else {
        k + 1
    };
    if name_idx >= scan.len() || scan.tok(name_idx).kind != TokenKind::Ident {
        return false;
    }
    let name = scan.tok(name_idx).text.clone();
    (args_close + 1..scan.len().saturating_sub(2)).any(|j| {
        scan.ident(j, &name)
            && scan.punct(j + 1, ".")
            && (scan.ident(j + 2, "finish") || scan.ident(j + 2, "finish_after"))
    })
}
