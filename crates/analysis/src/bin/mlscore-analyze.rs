//! Standalone front end for the workspace lints; `repro analyze` is the
//! same entry point reached through the bench CLI.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mlscore_analysis::cli::run(&args));
}
