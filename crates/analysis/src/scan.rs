//! File-level scanning shared by every lint: the significant-token view,
//! `// analyze:` directive parsing (suppressions and hot markers), and
//! `#[cfg(test)]` / `#[test]` region detection.

use crate::lexer::{lex, Token, TokenKind};
use crate::LINTS;

/// An inline suppression parsed from `// analyze: allow(LINT, reason=...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The lint code the comment allows.
    pub lint: String,
    /// The mandatory justification. Suppressions without one do not
    /// suppress (they raise `A000` instead), so this is always non-empty.
    pub reason: String,
    /// Line of the comment itself.
    pub line: u32,
    /// Lines the suppression covers: the comment's own line and the next
    /// line holding a significant token.
    pub covers: Vec<u32>,
}

/// A malformed `// analyze:` directive (missing reason, unknown lint,
/// unknown directive). Reported as lint `A000` and never suppresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadDirective {
    /// Line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Inclusive line range.
pub type LineRange = (u32, u32);

/// Everything the lints need to know about one file.
#[derive(Debug)]
pub struct FileScan {
    /// The full lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant tokens (no whitespace, no
    /// comments) — what the lint patterns match over.
    pub sig: Vec<usize>,
    /// Parsed, well-formed suppressions.
    pub suppressions: Vec<Suppression>,
    /// Malformed directives (become `A000` findings).
    pub bad_directives: Vec<BadDirective>,
    /// Brace-balanced regions following `// analyze: hot` markers.
    pub hot_ranges: Vec<LineRange>,
    /// Brace-balanced regions under `#[cfg(test)]` / `#[test]`.
    pub test_ranges: Vec<LineRange>,
}

impl FileScan {
    /// Lexes and scans one file.
    pub fn of(source: &str) -> Self {
        let tokens = lex(source);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();

        let mut scan = FileScan {
            tokens,
            sig,
            suppressions: Vec::new(),
            bad_directives: Vec::new(),
            hot_ranges: Vec::new(),
            test_ranges: Vec::new(),
        };
        scan.collect_directives();
        scan.collect_test_ranges();
        scan
    }

    /// The significant token at significant-index `i`.
    pub fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// True when the file has no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// True when the significant token at `i` is a punct with this exact
    /// text.
    pub fn punct(&self, i: usize, text: &str) -> bool {
        i < self.len() && self.tok(i).kind == TokenKind::Punct && self.tok(i).text == text
    }

    /// True when the significant token at `i` is an identifier with this
    /// exact text.
    pub fn ident(&self, i: usize, text: &str) -> bool {
        i < self.len() && self.tok(i).kind == TokenKind::Ident && self.tok(i).text == text
    }

    /// True when `line` falls inside any `#[cfg(test)]` / `#[test]` region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// True when `line` falls inside any `// analyze: hot` region.
    pub fn in_hot(&self, line: u32) -> bool {
        self.hot_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// True when a well-formed suppression for `lint` covers `line`.
    pub fn suppressed(&self, lint: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.lint == lint && s.covers.contains(&line))
    }

    /// The line of the first significant token strictly after `line`.
    fn next_sig_line(&self, line: u32) -> Option<u32> {
        self.sig
            .iter()
            .map(|&i| self.tokens[i].line)
            .find(|&l| l > line)
    }

    /// Starting from the significant token at `from`, finds the matching
    /// close for the first `open` punct, honoring nesting of
    /// `open`/`close`. Returns the significant index of the close.
    pub fn match_group(&self, from: usize, open: &str, close: &str) -> Option<usize> {
        let mut i = from;
        while i < self.len() && !self.punct(i, open) {
            i += 1;
        }
        if i >= self.len() {
            return None;
        }
        let mut depth = 0usize;
        while i < self.len() {
            if self.punct(i, open) {
                depth += 1;
            } else if self.punct(i, close) {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            i += 1;
        }
        None
    }

    fn collect_directives(&mut self) {
        // Borrow-friendly: gather (line, directive text) first.
        let comments: Vec<(u32, String)> = self
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::LineComment)
            .filter_map(|t| {
                let body = t.text.trim_start_matches('/').trim();
                body.strip_prefix("analyze:")
                    .map(|d| (t.line, d.trim().to_string()))
            })
            .collect();

        for (line, directive) in comments {
            if directive == "hot" {
                if let Some(range) = self.brace_region_after(line) {
                    self.hot_ranges.push(range);
                } else {
                    self.bad_directives.push(BadDirective {
                        line,
                        message: "`analyze: hot` marker with no following `{ ... }` region"
                            .to_string(),
                    });
                }
                continue;
            }
            match parse_allow(&directive) {
                Ok((lint, reason)) => {
                    if !LINTS.iter().any(|l| l.code == lint) {
                        self.bad_directives.push(BadDirective {
                            line,
                            message: format!("unknown lint `{lint}` in allow directive"),
                        });
                        continue;
                    }
                    let mut covers = vec![line];
                    covers.extend(self.next_sig_line(line));
                    self.suppressions.push(Suppression {
                        lint,
                        reason,
                        line,
                        covers,
                    });
                }
                Err(msg) => self
                    .bad_directives
                    .push(BadDirective { line, message: msg }),
            }
        }
        self.hot_ranges.sort_unstable();
        self.suppressions.sort_by_key(|s| s.line);
        self.bad_directives.sort_by_key(|d| d.line);
    }

    /// The `{ ... }` region opened by the first brace after `line`.
    fn brace_region_after(&self, line: u32) -> Option<LineRange> {
        let from = self.sig.iter().position(|&i| self.tokens[i].line > line)?;
        let mut open = from;
        while open < self.len() && !self.punct(open, "{") {
            open += 1;
        }
        let close = self.match_group(open, "{", "}")?;
        Some((self.tok(open).line, self.tok(close).line))
    }

    fn collect_test_ranges(&mut self) {
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < self.len() {
            if self.punct(i, "#") && self.punct(i + 1, "[") {
                let Some(attr_close) = self.match_group(i + 1, "[", "]") else {
                    break;
                };
                let idents: Vec<&str> = (i + 2..attr_close)
                    .filter(|&j| self.tok(j).kind == TokenKind::Ident)
                    .map(|j| self.tok(j).text.as_str())
                    .collect();
                let is_test_attr =
                    idents == ["test"] || (idents.contains(&"cfg") && idents.contains(&"test"));
                if is_test_attr {
                    // The attached item body: next `{` before any `;`.
                    let mut j = attr_close + 1;
                    while j < self.len() && !self.punct(j, "{") && !self.punct(j, ";") {
                        j += 1;
                    }
                    if self.punct(j, "{") {
                        if let Some(close) = self.match_group(j, "{", "}") {
                            ranges.push((self.tok(i).line, self.tok(close).line));
                            i = close + 1;
                            continue;
                        }
                    }
                }
                i = attr_close + 1;
                continue;
            }
            i += 1;
        }
        self.test_ranges = ranges;
    }
}

/// Parses `allow(LINT, reason=...)`; returns `(lint, reason)`.
fn parse_allow(directive: &str) -> Result<(String, String), String> {
    let inner = directive
        .strip_prefix("allow(")
        .and_then(|rest| rest.strip_suffix(')'))
        .ok_or_else(|| {
            format!(
                "unrecognized analyze directive `{directive}` \
                 (expected `hot` or `allow(LINT, reason=...)`)"
            )
        })?;
    let (lint, rest) = inner
        .split_once(',')
        .ok_or_else(|| "allow directive is missing the mandatory reason".to_string())?;
    let lint = lint.trim().to_string();
    let reason = rest
        .trim()
        .strip_prefix("reason")
        .and_then(|r| r.trim_start().strip_prefix('='))
        .map(|r| r.trim().trim_matches('"').trim().to_string())
        .ok_or_else(|| "allow directive is missing the mandatory reason".to_string())?;
    if reason.is_empty() {
        return Err("allow directive has an empty reason".to_string());
    }
    Ok((lint.to_string(), reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_suppressions_with_coverage() {
        let src = "\
// analyze: allow(D001, reason=\"bench measurement site\")
let t = Instant::now();
";
        let scan = FileScan::of(src);
        assert_eq!(scan.suppressions.len(), 1);
        let s = &scan.suppressions[0];
        assert_eq!(s.lint, "D001");
        assert_eq!(s.reason, "bench measurement site");
        assert_eq!(s.covers, vec![1, 2]);
        assert!(scan.suppressed("D001", 2));
        assert!(!scan.suppressed("D002", 2));
        assert!(scan.bad_directives.is_empty());
    }

    #[test]
    fn trailing_same_line_suppression_covers_its_own_line() {
        let src = "let t = Instant::now(); // analyze: allow(D001, reason=wall clock ok here)\n";
        let scan = FileScan::of(src);
        assert!(scan.suppressed("D001", 1));
    }

    #[test]
    fn missing_reason_is_a_bad_directive_and_does_not_suppress() {
        for bad in [
            "// analyze: allow(D001)",
            "// analyze: allow(D001, reason=)",
            "// analyze: allow(D001, reason= \"\" )",
            "// analyze: allow(Z999, reason=\"x\")",
            "// analyze: allos(D001, reason=\"x\")",
        ] {
            let src = format!("{bad}\nlet t = Instant::now();\n");
            let scan = FileScan::of(&src);
            assert!(!scan.suppressed("D001", 2), "must not suppress for {bad}");
            assert_eq!(scan.bad_directives.len(), 1, "must flag {bad}");
        }
    }

    #[test]
    fn hot_marker_attaches_to_the_next_brace_region() {
        let src = "\
fn cold() { x(); }
// analyze: hot
fn walk(xs: &[u64]) -> u64 {
    xs.iter().sum()
}
fn cold2() { y(); }
";
        let scan = FileScan::of(src);
        assert_eq!(scan.hot_ranges, vec![(3, 5)]);
        assert!(scan.in_hot(4));
        assert!(!scan.in_hot(1));
        assert!(!scan.in_hot(6));
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_ranged() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { panic!(\"fine in tests\"); }
}
";
        let scan = FileScan::of(src);
        assert!(scan.in_test(5));
        assert!(!scan.in_test(1));
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_swallow_the_file() {
        let src = "\
#[cfg(test)]
use foo::bar;
fn live() {}
";
        let scan = FileScan::of(src);
        assert!(!scan.in_test(3));
    }
}
