//! A hand-rolled Rust lexer.
//!
//! The container is offline, so the analyzer cannot use `syn`; the lints in
//! this crate only need a token stream with line numbers, not a syntax
//! tree. The lexer is *lossless*: concatenating the `text` of every token
//! reproduces the input byte-for-byte (pinned by a proptest in
//! `tests/lexer_roundtrip.rs`), which guarantees no source region silently
//! escapes scanning.
//!
//! Comments and string/char literals are single tokens, so lint passes that
//! match identifiers can never fire on prose, doc examples, or string
//! contents.

use std::fmt;

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal and vertical whitespace (including newlines).
    Whitespace,
    /// `// ...` up to (not including) the terminating newline. Doc comments
    /// (`///`, `//!`) are line comments too.
    LineComment,
    /// `/* ... */`, nesting respected. Unterminated comments run to EOF.
    BlockComment,
    /// An identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime (`'a`, `'static`) or a loop label.
    Lifetime,
    /// An integer or float literal, with any suffix.
    Number,
    /// A string, raw string, byte string, or char literal.
    Literal,
    /// A single punctuation byte (`{`, `::` is two tokens, etc.).
    Punct,
    /// Any byte the lexer does not recognize (kept for losslessness).
    Unknown,
}

/// One lossless token: its kind, exact source text, and 1-based start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact bytes of the token as they appear in the source.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Lexes `source` into a lossless token stream.
///
/// Never fails: malformed input degrades to `Unknown` single-char tokens,
/// and unterminated literals/comments extend to end of input.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

/// Concatenates the tokens' text; equal to the lexed source by
/// construction.
pub fn render(tokens: &[Token]) -> String {
    tokens.iter().map(|t| t.text.as_str()).collect()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            let text = self.src[start..self.pos].to_string();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.line += text.bytes().filter(|&b| b == b'\n').count() as u32;
            self.out.push(Token { kind, text, line });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while !matches!(self.peek(0), None | Some(b'\n')) {
                    self.pos += 1;
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            self.pos += 2;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            self.pos += 2;
                        }
                        (Some(_), _) => self.pos += 1,
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => self.string_literal(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' if self.is_literal_prefix() => self.prefixed_literal(),
            _ if is_ident_start(b) => {
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                TokenKind::Ident
            }
            b'0'..=b'9' => self.number(),
            _ if b.is_ascii() => {
                self.pos += 1;
                if b.is_ascii_punctuation() {
                    TokenKind::Punct
                } else {
                    TokenKind::Unknown
                }
            }
            _ => {
                // Skip one whole UTF-8 scalar (input is &str, boundaries
                // are valid).
                let c_len = self.src[self.pos..]
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                self.pos += c_len;
                TokenKind::Unknown
            }
        }
    }

    /// True when the byte at `pos` starts `r"`, `r#"`, `r#ident`, `b"`,
    /// `b'`, `br"`, or `br#"` rather than a plain identifier.
    fn is_literal_prefix(&self) -> bool {
        let b = self.bytes[self.pos];
        match (b, self.peek(1)) {
            (b'r', Some(b'"')) => true,
            (b'r', Some(b'#')) => {
                // r#"raw"# (literal) vs r#ident (raw identifier).
                let mut i = 1;
                while self.peek(i) == Some(b'#') {
                    i += 1;
                }
                self.peek(i) == Some(b'"')
            }
            (b'b', Some(b'"' | b'\'')) => true,
            (b'b', Some(b'r')) => matches!(self.peek(2), Some(b'"' | b'#')),
            _ => false,
        }
    }

    fn prefixed_literal(&mut self) -> TokenKind {
        let raw = self.bytes[self.pos] == b'r'
            || (self.bytes[self.pos] == b'b' && self.peek(1) == Some(b'r'));
        while matches!(self.peek(0), Some(b'r' | b'b')) {
            self.pos += 1;
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some(b'#') {
                hashes += 1;
                self.pos += 1;
            }
            if self.peek(0) == Some(b'"') {
                self.pos += 1;
                loop {
                    match self.peek(0) {
                        None => break,
                        Some(b'"') => {
                            self.pos += 1;
                            let mut closing = 0usize;
                            while closing < hashes && self.peek(0) == Some(b'#') {
                                closing += 1;
                                self.pos += 1;
                            }
                            if closing == hashes {
                                break;
                            }
                        }
                        Some(_) => self.pos += 1,
                    }
                }
            }
            TokenKind::Literal
        } else if self.peek(0) == Some(b'\'') {
            self.pos += 1;
            self.char_body();
            TokenKind::Literal
        } else {
            self.string_literal()
        }
    }

    fn string_literal(&mut self) -> TokenKind {
        debug_assert_eq!(self.peek(0), Some(b'"'));
        self.pos += 1;
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => self.pos += 2.min(self.bytes.len() - self.pos),
                Some(_) => self.pos += 1,
            }
        }
        TokenKind::Literal
    }

    /// Consumes the body of a char literal after the opening `'`.
    fn char_body(&mut self) {
        match self.peek(0) {
            Some(b'\\') => {
                self.pos += 2.min(self.bytes.len() - self.pos);
                // Escapes like \u{1F600} have a bracketed payload.
                if self.peek(0) == Some(b'{') {
                    while !matches!(self.peek(0), None | Some(b'}')) {
                        self.pos += 1;
                    }
                    if self.peek(0) == Some(b'}') {
                        self.pos += 1;
                    }
                }
            }
            Some(_) => {
                let c_len = self.src[self.pos..]
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                self.pos += c_len;
            }
            None => return,
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
    }

    fn char_or_lifetime(&mut self) -> TokenKind {
        debug_assert_eq!(self.peek(0), Some(b'\''));
        // `'a'` / `'\n'` are char literals; `'a` / `'static` are lifetimes.
        if self.peek(1).is_some_and(is_ident_start) {
            // Scan the identifier run; a trailing quote makes it a char.
            let mut i = 1;
            while self.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if self.peek(i) == Some(b'\'') && i == 2 {
                self.pos += 1;
                self.char_body();
                return TokenKind::Literal;
            }
            if self.peek(i) == Some(b'\'') && i != 2 {
                // Multi-char body like 'abc' is not valid Rust; treat as a
                // literal anyway so the text stays one token.
                self.pos += i + 1;
                return TokenKind::Literal;
            }
            self.pos += i;
            return TokenKind::Lifetime;
        }
        // `'\n'`, `'('`, `'0'`, unterminated `'` at EOF...
        self.pos += 1;
        if self.peek(0).is_some() {
            self.char_body();
        }
        TokenKind::Literal
    }

    fn number(&mut self) -> TokenKind {
        // Digits, underscores, suffixes, hex/oct/bin bodies, and float
        // forms. A `.` joins only when followed by a digit (so `0..n` and
        // `x.0.clone()` split correctly); `+`/`-` join only directly after
        // an exponent `e`/`E` in a decimal literal.
        let hex = self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'X'));
        loop {
            match self.peek(0) {
                Some(b'0'..=b'9' | b'_') => self.pos += 1,
                Some(b'a'..=b'z' | b'A'..=b'Z') => {
                    let is_exp = matches!(self.bytes[self.pos], b'e' | b'E') && !hex;
                    self.pos += 1;
                    if is_exp && matches!(self.peek(0), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                }
                Some(b'.') if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => self.pos += 1,
                _ => break,
            }
        }
        TokenKind::Number
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn roundtrips_representative_source() {
        let src = r##"
//! Module docs with `HashMap` in prose.
use std::collections::HashMap; // trailing
/* block /* nested */ still comment */
fn f<'a>(x: &'a [u8]) -> u64 {
    let s = "string with Instant::now() inside";
    let r = r#"raw "quoted" body"#;
    let b = b"bytes"; let c = 'x'; let nl = '\n';
    let n = 0xFF_u64 + 1.5e-3 + 2.0f32 as f64 as u64;
    x[0] as u64 + s.len() as u64 + r.len() as u64 + b.len() as u64
        + c as u64 + nl as u64 + n
}
"##;
        assert_eq!(render(&lex(src)), src);
    }

    #[test]
    fn identifiers_inside_strings_and_comments_stay_opaque() {
        let src = "// HashMap\nlet s = \"HashMap\"; /* HashMap */ let h = 1;";
        let idents: Vec<String> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(idents, ["let", "s", "let", "h"]);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = kinds("'a 'static 'x' '\\n' '_'");
        assert_eq!(
            toks,
            [
                (TokenKind::Lifetime, "'a".to_string()),
                (TokenKind::Lifetime, "'static".to_string()),
                (TokenKind::Literal, "'x'".to_string()),
                (TokenKind::Literal, "'\\n'".to_string()),
                (TokenKind::Literal, "'_'".to_string()),
            ]
        );
    }

    #[test]
    fn raw_identifiers_are_idents_not_literals() {
        let toks = kinds("r#match r\"str\" br#\"raw\"#");
        assert_eq!(toks[0], (TokenKind::Ident, "r".to_string()));
        assert_eq!(toks[1], (TokenKind::Punct, "#".to_string()));
        assert_eq!(toks[2], (TokenKind::Ident, "match".to_string()));
        assert_eq!(toks[3], (TokenKind::Literal, "r\"str\"".to_string()));
        assert_eq!(toks[4], (TokenKind::Literal, "br#\"raw\"#".to_string()));
    }

    #[test]
    fn line_numbers_track_every_token_kind() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e";
        let lines: Vec<(String, u32)> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.text, t.line))
            .collect();
        assert_eq!(
            lines,
            [
                ("a".to_string(), 1),
                ("\"two\nlines\"".to_string(), 2),
                ("b".to_string(), 4),
                ("/* c\nd */".to_string(), 4),
                ("e".to_string(), 5),
            ]
        );
    }

    #[test]
    fn numeric_ranges_split_and_floats_join() {
        let toks = kinds("0..10 1.5e-3 1.0e+4 0xA_B 1_000u64 x.0.y");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            [
                "0", ".", ".", "10", "1.5e-3", "1.0e+4", "0xA_B", "1_000u64", "x", ".", "0", ".",
                "y"
            ]
        );
    }

    #[test]
    fn unterminated_inputs_do_not_loop_or_drop_bytes() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b'"] {
            assert_eq!(render(&lex(src)), src, "lossless on {src:?}");
        }
    }
}
