//! The `analyze` command-line front end, shared by the standalone
//! `mlscore-analyze` binary and the `repro analyze` subcommand.

use std::fs;
use std::path::PathBuf;

use mlscore_telemetry::json::write_escaped;

use crate::{analyze_workspace, baseline, Finding, LINTS};

/// Default baseline location, relative to the workspace root.
pub const DEFAULT_BASELINE: &str = "analysis-baseline.json";

const USAGE: &str = "\
usage: analyze [options]

Runs the mlscore workspace lints (see DESIGN.md \u{a7}10) over crates/*/src.

options:
  --json               emit machine-readable JSON instead of human diagnostics
  --check-baseline     compare findings against the committed baseline; fail on
                       new findings AND on stale baseline entries
  --write-baseline     regenerate the baseline from current findings and exit
  --baseline <file>    baseline path (default: analysis-baseline.json)
  --root <dir>         workspace root (default: current directory)
  --list-lints         print the lint catalog and exit
  -h, --help           this text

exit codes: 0 clean/pass, 1 findings or baseline mismatch, 2 usage/io error";

struct Options {
    json: bool,
    check_baseline: bool,
    write_baseline: bool,
    baseline: Option<PathBuf>,
    root: PathBuf,
}

/// Runs the analyzer CLI; returns the process exit code.
pub fn run(args: &[String]) -> i32 {
    let mut opts = Options {
        json: false,
        check_baseline: false,
        write_baseline: false,
        baseline: None,
        root: PathBuf::from("."),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--check-baseline" => opts.check_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--baseline" => match it.next() {
                Some(path) => opts.baseline = Some(PathBuf::from(path)),
                None => return usage_error("--baseline needs a path"),
            },
            "--root" => match it.next() {
                Some(path) => opts.root = PathBuf::from(path),
                None => return usage_error("--root needs a directory"),
            },
            "--list-lints" => {
                for lint in LINTS {
                    println!("{}  {}", lint.code, lint.summary);
                }
                return 0;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return 0;
            }
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }

    let findings = match analyze_workspace(&opts.root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 2;
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join(DEFAULT_BASELINE));

    if opts.write_baseline {
        let doc = baseline::to_json(&baseline::aggregate(&findings));
        if let Err(e) = fs::write(&baseline_path, doc) {
            eprintln!("analyze: writing {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "analyze: wrote baseline for {} finding(s) to {}",
            findings.len(),
            baseline_path.display()
        );
        return 0;
    }

    if opts.json {
        println!("{}", render_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }

    if opts.check_baseline {
        let doc = match fs::read_to_string(&baseline_path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("analyze: reading {}: {e}", baseline_path.display());
                return 2;
            }
        };
        let entries = match baseline::parse(&doc) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("analyze: {}: {e}", baseline_path.display());
                return 2;
            }
        };
        let errors = baseline::check(&findings, &entries);
        if errors.is_empty() {
            if !opts.json {
                println!(
                    "analyze: clean ({} finding(s), all within baseline)",
                    findings.len()
                );
            }
            return 0;
        }
        for e in &errors {
            eprintln!("analyze: {e}");
        }
        return 1;
    }

    if findings.is_empty() {
        if !opts.json {
            println!("analyze: clean (0 findings)");
        }
        0
    } else {
        if !opts.json {
            println!("analyze: {} finding(s)", findings.len());
        }
        1
    }
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("analyze: {msg}");
    eprintln!("{USAGE}");
    2
}

/// Renders findings as a stable JSON document with file:line spans.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"total\": ");
    out.push_str(&findings.len().to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    { \"lint\": ");
        write_escaped(&mut out, &f.lint);
        out.push_str(", \"file\": ");
        write_escaped(&mut out, &f.file);
        out.push_str(&format!(", \"line\": {}, \"message\": ", f.line));
        write_escaped(&mut out, &f.message);
        out.push_str(" }");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_telemetry::json;

    #[test]
    fn json_rendering_is_parseable_and_carries_spans() {
        let findings = vec![Finding {
            lint: "D001".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            line: 7,
            message: "wall-clock \"read\"".to_string(),
        }];
        let doc = json::parse(&render_json(&findings)).unwrap();
        assert_eq!(
            doc.get("total").and_then(json::JsonValue::as_f64),
            Some(1.0)
        );
        let item = &doc
            .get("findings")
            .and_then(json::JsonValue::as_array)
            .unwrap()[0];
        assert_eq!(
            item.get("lint").and_then(json::JsonValue::as_str),
            Some("D001")
        );
        assert_eq!(
            item.get("line").and_then(json::JsonValue::as_f64),
            Some(7.0)
        );
        assert_eq!(
            item.get("message").and_then(json::JsonValue::as_str),
            Some("wall-clock \"read\"")
        );
    }

    #[test]
    fn empty_findings_render_an_empty_array() {
        let doc = json::parse(&render_json(&[])).unwrap();
        assert_eq!(
            doc.get("total").and_then(json::JsonValue::as_f64),
            Some(0.0)
        );
        assert_eq!(
            doc.get("findings").and_then(json::JsonValue::as_array),
            Some(&[][..])
        );
    }
}
