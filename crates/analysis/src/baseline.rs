//! The committed-findings baseline.
//!
//! `analysis-baseline.json` records, per `(lint, file)`, how many findings
//! CI tolerates. The check fails in **both** directions: a count above the
//! baseline means new findings crept in; a count below (or a file that no
//! longer fires at all) means the baseline has gone stale and must be
//! regenerated — it only ever shrinks. The goal state, which this
//! workspace is committed at, is an empty baseline: every legitimate site
//! carries an inline `allow` with a reason instead.

use std::collections::BTreeMap;

use mlscore_telemetry::json::{self, JsonValue};

use crate::Finding;

/// Tolerated findings for one `(lint, file)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Lint code.
    pub lint: String,
    /// Workspace-relative file.
    pub file: String,
    /// Findings tolerated there.
    pub count: usize,
}

/// Aggregates findings into deterministic `(lint, file) -> count` form.
pub fn aggregate(findings: &[Finding]) -> BTreeMap<(String, String), usize> {
    let mut counts = BTreeMap::new();
    for f in findings {
        *counts.entry((f.lint.clone(), f.file.clone())).or_insert(0) += 1;
    }
    counts
}

/// Serializes a baseline (sorted, stable formatting — safe to commit).
pub fn to_json(counts: &BTreeMap<(String, String), usize>) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, ((lint, file), count)) in counts.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    { \"lint\": ");
        json::write_escaped(&mut out, lint);
        out.push_str(", \"file\": ");
        json::write_escaped(&mut out, file);
        out.push_str(&format!(", \"count\": {count} }}"));
    }
    if !counts.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parses a baseline document.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse(input: &str) -> Result<Vec<BaselineEntry>, String> {
    let doc = json::parse(input).map_err(|e| e.to_string())?;
    let findings = doc
        .get("findings")
        .and_then(JsonValue::as_array)
        .ok_or("baseline is missing the `findings` array")?;
    let mut entries = Vec::new();
    for item in findings {
        let field = |key: &str| {
            item.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline entry is missing `{key}`"))
        };
        let count = item
            .get("count")
            .and_then(JsonValue::as_f64)
            .filter(|c| c.fract() == 0.0 && *c >= 0.0)
            .ok_or("baseline entry is missing a whole-number `count`")?;
        entries.push(BaselineEntry {
            lint: field("lint")?,
            file: field("file")?,
            count: count as usize,
        });
    }
    Ok(entries)
}

/// Compares current findings against the baseline. Empty result = pass.
pub fn check(findings: &[Finding], baseline: &[BaselineEntry]) -> Vec<String> {
    let current = aggregate(findings);
    let allowed: BTreeMap<(String, String), usize> = baseline
        .iter()
        .map(|e| ((e.lint.clone(), e.file.clone()), e.count))
        .collect();

    let mut errors = Vec::new();
    for ((lint, file), &n) in &current {
        let tolerated = allowed
            .get(&(lint.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if n > tolerated {
            errors.push(format!(
                "{file}: {n} {lint} finding(s), baseline tolerates {tolerated} — \
                 fix the new findings or suppress them with a reason"
            ));
        }
    }
    for ((lint, file), &tolerated) in &allowed {
        let n = current
            .get(&(lint.clone(), file.clone()))
            .copied()
            .unwrap_or(0);
        if n < tolerated {
            errors.push(format!(
                "{file}: baseline tolerates {tolerated} {lint} finding(s) but only {n} fire — \
                 the baseline is stale, regenerate it with --write-baseline"
            ));
        }
    }
    errors.sort();
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &str, file: &str, line: u32) -> Finding {
        Finding {
            lint: lint.to_string(),
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn json_roundtrips() {
        let findings = vec![
            finding("D001", "crates/a/src/x.rs", 3),
            finding("D001", "crates/a/src/x.rs", 9),
            finding("P001", "crates/b/src/y.rs", 1),
        ];
        let counts = aggregate(&findings);
        let entries = parse(&to_json(&counts)).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].count, 2);
        assert!(check(&findings, &entries).is_empty());
    }

    #[test]
    fn empty_baseline_serializes_and_passes_on_clean_tree() {
        let counts = aggregate(&[]);
        let entries = parse(&to_json(&counts)).unwrap();
        assert!(entries.is_empty());
        assert!(check(&[], &entries).is_empty());
    }

    #[test]
    fn new_findings_fail_the_check() {
        let baseline = vec![BaselineEntry {
            lint: "D001".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            count: 1,
        }];
        let findings = vec![
            finding("D001", "crates/a/src/x.rs", 3),
            finding("D001", "crates/a/src/x.rs", 9),
        ];
        let errors = check(&findings, &baseline);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("baseline tolerates 1"), "{errors:?}");
    }

    #[test]
    fn stale_baseline_entries_fail_the_check() {
        let baseline = vec![BaselineEntry {
            lint: "D001".to_string(),
            file: "crates/a/src/x.rs".to_string(),
            count: 2,
        }];
        let errors = check(&[finding("D001", "crates/a/src/x.rs", 3)], &baseline);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("stale"), "{errors:?}");
        // ...and an entry for a file that stopped firing entirely.
        let errors = check(&[], &baseline);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("stale"), "{errors:?}");
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        for bad in [
            "[]",
            "{\"version\": 1}",
            "{\"findings\": [{\"lint\": \"D001\"}]}",
            "{\"findings\": [{\"lint\": \"D001\", \"file\": \"f\", \"count\": 1.5}]}",
            "not json",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
