//! Deterministic workspace traversal: which files the analyzer scans.
//!
//! Scope is every `crates/*/src/**/*.rs` (library and bin sources),
//! excluding `tests/`, `benches/`, and `examples/` directories and the
//! vendored dependency stand-ins under `vendor/` — integration tests and
//! vendor stubs are not request-path code. Paths come back sorted and
//! workspace-relative so output and baselines are byte-stable.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collects the workspace-relative paths of every source file to analyze.
///
/// # Errors
///
/// Propagates I/O failures; a missing `crates/` directory is an error (it
/// means `root` is not the workspace root).
pub fn source_files(root: &Path) -> io::Result<Vec<String>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{} has no crates/ directory (not a workspace root?)",
                root.display()
            ),
        ));
    }
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }

    let mut rel: Vec<String> = files
        .into_iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walking_a_non_workspace_dir_is_an_error() {
        let err = source_files(Path::new("/definitely/not/a/workspace")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
