//! `mlscore-analysis`: workspace-specific static analysis.
//!
//! The reproduction's headline claims — same `(seed, config)` ⇒
//! byte-identical exports, bit-exact scoring, zero-alloc kernels — are
//! invariants of the *source*, not just of the tests that sample them.
//! This crate enforces them mechanically with a hand-rolled lexer (the
//! container is offline, so no `syn`) and a small set of repo-specific
//! lints:
//!
//! | Lint | Invariant |
//! |------|-----------|
//! | D001 | no wall-clock reads (`Instant::now`/`SystemTime`) outside allowlisted measurement sites |
//! | D002 | no `HashMap`/`HashSet` in report/export-building crates (`serve`, `core`) |
//! | D003 | no ambient/unseeded RNG construction |
//! | P001 | no `unwrap`/`expect`/`panic!`/plain-indexing on `serve`/`pipeline`/`exec` request paths |
//! | H001 | no allocation inside `// analyze: hot` regions |
//! | T001 | every telemetry `.span(...)` reaches a `finish`/`finish_after` |
//! | T002 | every request-lifecycle journal `.emit(...)` in `serve` carries a request id |
//! | A000 | every `// analyze:` directive is well-formed and carries a reason |
//!
//! Legitimate exceptions are annotated inline:
//!
//! ```text
//! // analyze: allow(D001, reason="bench boundary: this is the measurement")
//! let t0 = Instant::now();
//! ```
//!
//! and a reason is mandatory — an `allow` without one both fails to
//! suppress and raises `A000`. Findings are compared against a committed
//! `analysis-baseline.json` in CI (see [`baseline`]); the baseline is
//! empty and may only shrink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cli;
pub mod lexer;
pub mod lints;
pub mod scan;
pub mod walk;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use scan::FileScan;

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint code (`D001`, ...).
    pub lint: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A lint's catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintInfo {
    /// The code findings and `allow` directives use.
    pub code: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every lint the analyzer knows, in report order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        code: "A000",
        summary: "malformed `// analyze:` directive (missing or empty reason, unknown lint)",
    },
    LintInfo {
        code: "D001",
        summary: "wall-clock read outside an allowlisted measurement site",
    },
    LintInfo {
        code: "D002",
        summary: "unordered map in a report/export-building crate",
    },
    LintInfo {
        code: "D003",
        summary: "ambient or unseeded RNG construction",
    },
    LintInfo {
        code: "P001",
        summary: "panic path (unwrap/expect/panic!/plain indexing) in request-serving code",
    },
    LintInfo {
        code: "H001",
        summary: "allocation inside a `// analyze: hot` region",
    },
    LintInfo {
        code: "T001",
        summary: "telemetry span opened without a matching finish",
    },
    LintInfo {
        code: "T002",
        summary: "request-lifecycle journal emit without a request id",
    },
];

/// Analyzes one file's source text. `rel_path` decides crate-scoped lints
/// (`crates/serve/src/...` puts the file in the `serve` crate).
pub fn analyze_source(rel_path: &str, source: &str) -> Vec<Finding> {
    lints::run_lints(rel_path, &FileScan::of(source))
}

/// Analyzes the whole workspace rooted at `root`; findings come back
/// sorted by `(file, line, lint)`.
///
/// # Errors
///
/// Propagates I/O failures from the traversal or file reads.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in walk::source_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        findings.extend(analyze_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    //! Per-lint fixture tests: positive, negative, suppressed-with-reason,
    //! and suppressed-without-reason (which must still fail). Deleting any
    //! lint implementation breaks at least one `..._fires` test here.

    use super::*;

    /// Fixture path inside the `serve` crate — in scope for every
    /// crate-scoped lint.
    const SERVE: &str = "crates/serve/src/fixture.rs";
    /// Fixture path outside all crate-scoped lints.
    const NEUTRAL: &str = "crates/telemetry/src/fixture.rs";

    fn codes(path: &str, src: &str) -> Vec<String> {
        analyze_source(path, src)
            .into_iter()
            .map(|f| f.lint)
            .collect()
    }

    #[test]
    fn d001_fires_on_wall_clock_reads() {
        let f = analyze_source(NEUTRAL, "fn f() { let t = Instant::now(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "D001");
        assert_eq!(f[0].line, 1);
        assert_eq!(
            codes(NEUTRAL, "use std::time::SystemTime;\n"),
            vec!["D001".to_string()]
        );
    }

    #[test]
    fn d001_negative_and_test_code() {
        assert!(codes(NEUTRAL, "fn f() { let t = SimInstant::ZERO; }\n").is_empty());
        // `Instant` without `::now` (e.g. a type mention) is fine.
        assert!(codes(NEUTRAL, "fn f(t: Instant) -> Instant { t }\n").is_empty());
        // Test code may touch the real clock.
        assert!(codes(
            NEUTRAL,
            "#[cfg(test)]\nmod tests {\n  fn f() { let t = Instant::now(); }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn d001_suppression_needs_a_reason() {
        let ok = "// analyze: allow(D001, reason=\"measurement site\")\nlet t = Instant::now();\n";
        assert!(codes(NEUTRAL, ok).is_empty());
        let bad = "// analyze: allow(D001)\nlet t = Instant::now();\n";
        let codes = codes(NEUTRAL, bad);
        assert!(
            codes.contains(&"D001".to_string()),
            "must still fire: {codes:?}"
        );
        assert!(
            codes.contains(&"A000".to_string()),
            "must flag the bad allow: {codes:?}"
        );
    }

    #[test]
    fn d002_fires_in_report_building_crates_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes(SERVE, src), vec!["D002".to_string()]);
        assert_eq!(
            codes("crates/core/src/fixture.rs", "let s: HashSet<u32> = x;\n"),
            vec!["D002".to_string()]
        );
        // Out-of-scope crate: backends may hash freely.
        assert!(codes("crates/backend/src/fixture.rs", src).is_empty());
        // BTreeMap is the blessed alternative.
        assert!(codes(SERVE, "use std::collections::BTreeMap;\n").is_empty());
    }

    #[test]
    fn d002_suppression_needs_a_reason() {
        let ok = "// analyze: allow(D002, reason=\"indexed only, never iterated\")\n\
                  use std::collections::HashMap;\n";
        assert!(codes(SERVE, ok).is_empty());
        let bad = "// analyze: allow(D002, reason=)\nuse std::collections::HashMap;\n";
        assert!(codes(SERVE, bad).contains(&"D002".to_string()));
    }

    #[test]
    fn d003_fires_on_ambient_rng() {
        assert_eq!(
            codes(NEUTRAL, "fn f() { let mut rng = thread_rng(); }\n"),
            vec!["D003".to_string()]
        );
        assert_eq!(
            codes(NEUTRAL, "let rng = StdRng::from_entropy();\n"),
            vec!["D003".to_string()]
        );
        assert_eq!(
            codes(NEUTRAL, "let x: f64 = rand::random();\n"),
            vec!["D003".to_string()]
        );
    }

    #[test]
    fn d003_negative_and_suppressed() {
        assert!(codes(NEUTRAL, "let rng = StdRng::seed_from_u64(7);\n").is_empty());
        let ok = "// analyze: allow(D003, reason=\"demo binary, not a measurement\")\n\
                  let rng = thread_rng();\n";
        assert!(codes(NEUTRAL, ok).is_empty());
        let bad = "// analyze: allow(D003, reason= )\nlet rng = thread_rng();\n";
        assert!(codes(NEUTRAL, bad).contains(&"D003".to_string()));
    }

    #[test]
    fn p001_fires_on_panic_paths_in_request_crates() {
        assert_eq!(
            codes(SERVE, "fn f() { x.unwrap(); }\n"),
            vec!["P001".to_string()]
        );
        assert_eq!(
            codes(SERVE, "fn f() { x.expect(\"msg\"); }\n"),
            vec!["P001".to_string()]
        );
        assert_eq!(
            codes(SERVE, "fn f() { panic!(\"boom\"); }\n"),
            vec!["P001".to_string()]
        );
        assert_eq!(
            codes(
                "crates/pipeline/src/fixture.rs",
                "fn f() { unreachable!(); }\n"
            ),
            vec!["P001".to_string()]
        );
        // Plain indexing in serve/pipeline...
        assert_eq!(
            codes(SERVE, "fn f(xs: &[u64], i: usize) -> u64 { xs[i] }\n"),
            vec!["P001".to_string()]
        );
    }

    #[test]
    fn p001_negative_cases() {
        // Out-of-scope crate.
        assert!(codes(NEUTRAL, "fn f() { x.unwrap(); }\n").is_empty());
        // Range slicing is not plain indexing.
        assert!(codes(SERVE, "fn f(xs: &[u64]) -> &[u64] { &xs[1..3] }\n").is_empty());
        // `get` is the blessed form; unwrap_or_else is not unwrap.
        assert!(codes(SERVE, "fn f() { x.get(i).unwrap_or_else(d); }\n").is_empty());
        // Array-literal and attribute brackets are not indexing.
        assert!(codes(SERVE, "#[derive(Debug)]\nfn f() { for x in [1, 2] {} }\n").is_empty());
        // exec is in unwrap scope but not indexing scope (kernels index by
        // design).
        assert!(codes(
            "crates/exec/src/fixture.rs",
            "fn f(xs: &[u64]) -> u64 { xs[0] }\n"
        )
        .is_empty());
        assert_eq!(
            codes("crates/exec/src/fixture.rs", "fn f() { x.unwrap(); }\n"),
            vec!["P001".to_string()]
        );
    }

    #[test]
    fn p001_suppression_needs_a_reason() {
        let ok = "fn f() {\n  // analyze: allow(P001, reason=\"invariant: built in new()\")\n  \
                  x.unwrap();\n}\n";
        assert!(codes(SERVE, ok).is_empty());
        let bad = "fn f() {\n  // analyze: allow(P001)\n  x.unwrap();\n}\n";
        assert!(codes(SERVE, bad).contains(&"P001".to_string()));
    }

    #[test]
    fn h001_fires_only_inside_hot_regions() {
        let hot = "// analyze: hot\nfn walk(xs: &[u64]) -> Vec<u64> {\n  xs.to_vec()\n}\n";
        assert_eq!(codes(NEUTRAL, hot), vec!["H001".to_string()]);
        let constructors = "// analyze: hot\nfn f() {\n  let v = Vec::new();\n  \
                            let s = vec![0u8; 4];\n  let c = x.clone();\n}\n";
        assert_eq!(codes(NEUTRAL, constructors).len(), 3);
        // The same code outside a hot region is fine.
        assert!(codes(NEUTRAL, "fn cold(xs: &[u64]) -> Vec<u64> { xs.to_vec() }\n").is_empty());
        // Scratch reuse is the blessed pattern.
        let reuse = "// analyze: hot\nfn f(buf: &mut Vec<u64>) {\n  buf.clear();\n  \
                     buf.resize(4, 0);\n}\n";
        assert!(codes(NEUTRAL, reuse).is_empty());
    }

    #[test]
    fn h001_fires_on_alloc_in_bitvector_scoring_loop() {
        // A fixture shaped like the QuickScorer kernel's per-record mask
        // loop: allocating the bitvector scratch inside the hot region is
        // exactly the per-record-cost regression H001 exists to catch.
        const EXEC: &str = "crates/exec/src/fixture.rs";
        let bad = "// analyze: hot\n\
                   fn qs_classify_block(rows: Range<usize>) {\n  \
                   for row in rows {\n    \
                   let mut masks = vec![u64::MAX; words];\n    \
                   for item in items {\n      \
                   masks[item.tree] &= item.mask;\n    }\n  }\n}\n";
        let findings = analyze_source(EXEC, bad);
        assert!(
            findings.iter().any(|f| f.lint == "H001"),
            "alloc in bitvector loop must fire H001: {findings:?}"
        );
        // The shipped kernel's shape — thread-local scratch cleared and
        // resized per block — stays clean.
        let good = "// analyze: hot\n\
                    fn qs_classify_block(rows: Range<usize>, s: &mut Scratch) {\n  \
                    for row in rows {\n    \
                    s.masks.clear();\n    s.masks.resize(words, u64::MAX);\n    \
                    for item in items {\n      \
                    s.masks[item.tree] &= item.mask;\n    }\n  }\n}\n";
        assert!(analyze_source(EXEC, good).is_empty());
    }

    #[test]
    fn h001_covers_the_chunked_featurizer_shape() {
        // A fixture shaped like the fused path's per-chunk featurizer
        // (`NormParams::apply_slice` under `NormalizeStream::next_chunk`):
        // materializing a fresh normalized frame per chunk is the
        // marshal-copy regression the fused refactor removed.
        const DATA: &str = "crates/data/src/fixture.rs";
        let bad = "// analyze: hot\n\
                   fn next_chunk(src: &[f32], f: usize) -> Vec<f32> {\n  \
                   let mut dst = Vec::with_capacity(src.len());\n  \
                   for row in src.chunks_exact(f) {\n    \
                   dst.extend(row.iter().map(|v| norm(v)));\n  }\n  dst\n}\n";
        let findings = analyze_source(DATA, bad);
        assert!(
            findings.iter().any(|f| f.lint == "H001"),
            "per-chunk featurizer allocation must fire H001: {findings:?}"
        );
        // The shipped featurizer's shape — resize the reusable scratch
        // within capacity and normalize in place — stays clean.
        let good = "// analyze: hot\n\
                    fn next_chunk(src: &[f32], f: usize, scratch: &mut Frame) {\n  \
                    scratch.resize_rows(src.len() / f);\n  \
                    for (srow, drow) in src.chunks_exact(f)\
                    .zip(scratch.as_mut_slice().chunks_exact_mut(f)) {\n    \
                    for j in 0..f { drow[j] = apply(j, srow[j]); }\n  }\n}\n";
        assert!(analyze_source(DATA, good).is_empty());
    }

    #[test]
    fn h001_suppression_needs_a_reason() {
        let ok = "// analyze: hot\nfn f() {\n  \
                  // analyze: allow(H001, reason=\"amortized: once per batch, not per record\")\n  \
                  let v = Vec::new();\n}\n";
        assert!(codes(NEUTRAL, ok).is_empty());
        let bad = "// analyze: hot\nfn f() {\n  // analyze: allow(H001, reason=\"\")\n  \
                   let v = Vec::new();\n}\n";
        assert!(codes(NEUTRAL, bad).contains(&"H001".to_string()));
    }

    #[test]
    fn t001_fires_on_unfinished_spans() {
        let open = "fn f(tracer: &Tracer) {\n  tracer.span(\"work\", t0).scope(Scope::Query);\n}\n";
        assert_eq!(codes(NEUTRAL, open), vec!["T001".to_string()]);
    }

    #[test]
    fn t001_negative_cases() {
        // Chained finish, with nested parens in the args.
        let chained = "fn f() {\n  tracer.span(format!(\"q {i}\"), t0).scope(s).finish(t1);\n}\n";
        assert!(codes(NEUTRAL, chained).is_empty());
        let after = "fn f() {\n  tracer.span(\"w\", t0).finish_after(dur);\n}\n";
        assert!(codes(NEUTRAL, after).is_empty());
        // Let-bound guard finished later in the block.
        let bound = "fn f() {\n  let g = tracer.span(\"w\", t0).scope(s);\n  work();\n  \
                     g.finish(t1);\n}\n";
        assert!(codes(NEUTRAL, bound).is_empty());
        // ...but a bound guard that is never finished still fires.
        let leaked = "fn f() {\n  let g = tracer.span(\"w\", t0);\n  work();\n}\n";
        assert_eq!(codes(NEUTRAL, leaked), vec!["T001".to_string()]);
    }

    #[test]
    fn t001_suppression_needs_a_reason() {
        let ok =
            "fn f() {\n  // analyze: allow(T001, reason=\"guard moved into the event heap\")\n  \
                  tracer.span(\"w\", t0);\n}\n";
        assert!(codes(NEUTRAL, ok).is_empty());
        let bad = "fn f() {\n  // analyze: allow(T001, reason)\n  tracer.span(\"w\", t0);\n}\n";
        assert!(codes(NEUTRAL, bad).contains(&"T001".to_string()));
    }

    #[test]
    fn t002_fires_on_anonymous_journal_emits() {
        // A sequence number is not a request id.
        assert_eq!(
            codes(SERVE, "fn f() { j.emit(now, seq, kind); }\n"),
            vec!["T002".to_string()]
        );
        assert_eq!(
            codes(
                SERVE,
                "fn f() { self.journal.emit(now, 0, JournalKind::Admitted); }\n"
            ),
            vec!["T002".to_string()]
        );
    }

    #[test]
    fn t002_negative_cases() {
        // The request's id, in any spelling the serve crate uses.
        assert!(codes(SERVE, "fn f() { j.emit(now, r.id, kind); }\n").is_empty());
        assert!(codes(SERVE, "fn f() { j.emit(now, victim.id, kind); }\n").is_empty());
        assert!(codes(SERVE, "fn f() { j.emit(now, request_id, kind); }\n").is_empty());
        // Out-of-scope crate: `emit` methods elsewhere are not the journal.
        assert!(codes(NEUTRAL, "fn f() { sink.emit(now, seq, kind); }\n").is_empty());
    }

    #[test]
    fn t002_suppression_needs_a_reason() {
        let ok = "fn f() {\n  \
                  // analyze: allow(T002, reason=\"engine-level event, no single request\")\n  \
                  j.emit(now, seq, kind);\n}\n";
        assert!(codes(SERVE, ok).is_empty());
        let bad = "fn f() {\n  // analyze: allow(T002)\n  j.emit(now, seq, kind);\n}\n";
        let found = codes(SERVE, bad);
        assert!(found.contains(&"T002".to_string()), "{found:?}");
        assert!(found.contains(&"A000".to_string()), "{found:?}");
    }

    #[test]
    fn a000_fires_on_unknown_directives() {
        assert_eq!(
            codes(NEUTRAL, "// analyze: frobnicate\nfn f() {}\n"),
            vec!["A000"]
        );
        assert_eq!(
            codes(
                NEUTRAL,
                "// analyze: allow(Q999, reason=\"x\")\nfn f() {}\n"
            ),
            vec!["A000"]
        );
    }

    #[test]
    fn findings_sort_and_render_with_spans() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        let f = analyze_source(NEUTRAL, src);
        assert_eq!(f.len(), 2);
        let shown = f[0].to_string();
        assert!(
            shown.starts_with("crates/telemetry/src/fixture.rs:1: D001:"),
            "{shown}"
        );
    }
}
