//! The analyzer's load-bearing property: the lexer is lossless.
//!
//! Arbitrary concatenations of token fragments — including ones that merge
//! at the seams (`/` + `/`, digits + idents), swallow the rest of a line
//! (`//`), or never terminate (`"`, `/*`) — must render back
//! byte-identically. Losslessness is what guarantees no source region can
//! silently escape the lint scan.

use proptest::prelude::*;

use mlscore_analysis::lexer::{lex, render, TokenKind};

/// Fragments chosen to exercise every lexer branch and every nasty seam:
/// comments, nested block comments, raw/byte/char literals, lifetimes,
/// float and hex numbers, range punctuation, attributes, and fragments
/// that are individually unterminated.
const POOL: &[&str] = &[
    " ",
    "\n",
    "\t",
    "ident",
    "_x9",
    "HashMap",
    "r#match",
    "'a",
    "'static",
    "'x'",
    "'\\n'",
    "'\\u{1F600}'",
    "\"plain\"",
    "\"esc \\\" \\\\ \\n\"",
    "r\"raw\"",
    "r#\"hash \" raw\"#",
    "b\"bytes\"",
    "b'q'",
    "br#\"braw\"#",
    "// line comment",
    "/* block */",
    "/* nested /* deep */ ok */",
    "0",
    "42_000u64",
    "0xFF_AB",
    "0b1010",
    "1.5",
    "1.5e-3",
    "2E+9f64",
    "0..10",
    "..=",
    "::",
    "#[derive(Debug)]",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    ".",
    "->",
    "=>",
    "&&",
    "||",
    "!",
    "#",
    "\"unterminated",
    "/* unterminated",
    "'",
    "µ",
];

proptest! {
    #[test]
    fn lexer_roundtrips_arbitrary_token_sequences(
        picks in proptest::collection::vec(0usize..POOL.len(), 0usize..64)
    ) {
        let src: String = picks.iter().map(|&i| POOL[i]).collect();
        let tokens = lex(&src);
        prop_assert_eq!(render(&tokens), src.clone());
        // Losslessness must also hold token-by-token: every byte belongs
        // to exactly one token, in order.
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert!(!t.text.is_empty(), "empty token in {src:?}");
            prop_assert_eq!(&src[cursor..cursor + t.text.len()], t.text.as_str());
            cursor += t.text.len();
        }
        prop_assert_eq!(cursor, src.len());
    }

    #[test]
    fn line_numbers_are_monotone_and_match_newlines(
        picks in proptest::collection::vec(0usize..POOL.len(), 0usize..64)
    ) {
        let src: String = picks.iter().map(|&i| POOL[i]).collect();
        let mut expected_line = 1u32;
        for t in lex(&src) {
            prop_assert_eq!(t.line, expected_line, "token {:?} in {:?}", t.text, src);
            expected_line += t.text.bytes().filter(|&b| b == b'\n').count() as u32;
        }
    }
}

#[test]
fn whole_workspace_sources_roundtrip() {
    // The strongest fixture available: every real source file this
    // analyzer will ever scan.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let files = mlscore_analysis::walk::source_files(root).expect("walk workspace");
    assert!(files.len() > 40, "expected a real workspace, got {files:?}");
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel)).expect("read source");
        let tokens = lex(&src);
        assert_eq!(render(&tokens), src, "lossless lexing of {rel}");
        assert!(
            tokens.iter().any(|t| t.kind == TokenKind::Ident),
            "{rel} lexed to no identifiers"
        );
    }
}
