//! Scheduling policies over a set of backends.

use mlscore_backend::{OnnxCpu, ScoringBackend, SklearnCpu};
use mlscore_forest::ModelStats;
use mlscore_fpga::FpgaBackend;
use mlscore_gpu::{HummingbirdGpu, RapidsFil};
use mlscore_sim::SimDuration;

/// The paper's full backend roster: both CPU engines (sklearn 52-thread,
/// ONNX 1- and 52-thread), both GPU strategies, and the FPGA engine.
pub fn paper_backends() -> Vec<Box<dyn ScoringBackend>> {
    vec![
        Box::new(SklearnCpu::paper_default()),
        Box::new(OnnxCpu::single_thread()),
        Box::new(OnnxCpu::paper_52th()),
        Box::new(HummingbirdGpu::p100()),
        Box::new(RapidsFil::p100()),
        Box::new(FpgaBackend::paper_default()),
    ]
}

/// Cost-model (oracle) arbitration with amortized compile charging and an
/// eligibility mask — the serving engine's dispatch rule. Picks the argmin
/// of `estimate(stats, n).total() + prepare(i) / expected_reuse` over
/// backends that (a) support the model and (b) pass `eligible` (the engine
/// passes "this backend's device has a free slot right now"). With every
/// backend eligible and zero prepare costs this reduces to [`OraclePolicy`];
/// the learned-estimate counterpart is
/// `AdaptiveScheduler::choose_amortized_among`.
pub fn choose_amortized_eligible(
    stats: &ModelStats,
    n_records: u64,
    expected_reuse: u64,
    backends: &[Box<dyn ScoringBackend>],
    prepare: &dyn Fn(usize) -> SimDuration,
    eligible: &dyn Fn(usize) -> bool,
) -> Option<Choice> {
    let reuse = expected_reuse.max(1) as f64;
    backends
        .iter()
        .enumerate()
        .filter(|(i, b)| b.supports(stats).is_ok() && eligible(*i))
        .map(|(i, b)| {
            let total = b.estimate(stats, n_records).total() + prepare(i) / reuse;
            (i, total)
        })
        .min_by(|a, b| a.1.cmp(&b.1))
        .map(|(index, predicted)| Choice::new(index, predicted, stats, n_records, backends))
}

/// A scheduling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Choice {
    /// Index into the backend slice.
    pub index: usize,
    /// The chosen backend's name.
    pub name: String,
    /// The time the policy predicted for its choice.
    pub predicted: SimDuration,
    /// The CPU kernel the chosen backend's executor will dispatch for this
    /// call (`ScoringBackend::kernel_choice`), when it has a tier to pick
    /// from; `None` for offload backends with a single code path.
    pub kernel: Option<&'static str>,
}

impl Choice {
    /// Builds the decision record for `backends[index]`, asking the winner
    /// which CPU scoring kernel its executor would dispatch at this shape
    /// and batch size.
    pub fn new(
        index: usize,
        predicted: SimDuration,
        stats: &ModelStats,
        n_records: u64,
        backends: &[Box<dyn ScoringBackend>],
    ) -> Self {
        let backend = &backends[index];
        Self {
            index,
            name: backend.name().to_string(),
            predicted,
            kernel: backend
                .kernel_choice(stats, n_records)
                .map(|c| c.kernel.name()),
        }
    }
}

/// A backend-selection policy.
pub trait Policy {
    /// Human-readable policy name.
    fn name(&self) -> &str;

    /// Picks a backend for the given model shape and batch size.
    ///
    /// Backends whose [`ScoringBackend::supports`] rejects the model are
    /// never chosen. Returns `None` only if no backend supports the model.
    fn choose(
        &self,
        stats: &ModelStats,
        n_records: u64,
        backends: &[Box<dyn ScoringBackend>],
    ) -> Option<Choice>;
}

/// Picks the backend with the smallest modelled total time — the best any
/// scheduler could do if the cost models are exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct OraclePolicy;

impl Policy for OraclePolicy {
    fn name(&self) -> &str {
        "oracle"
    }

    fn choose(
        &self,
        stats: &ModelStats,
        n_records: u64,
        backends: &[Box<dyn ScoringBackend>],
    ) -> Option<Choice> {
        backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.supports(stats).is_ok())
            .map(|(i, b)| (i, b.estimate(stats, n_records).total()))
            .min_by(|a, b| a.1.cmp(&b.1))
            .map(|(index, predicted)| Choice::new(index, predicted, stats, n_records, backends))
    }
}

/// The Fig. 1 static rule: small batches stay on the CPU; large batches
/// with simple models go to the GPU; everything else goes to the FPGA.
#[derive(Debug, Clone, Copy)]
pub struct HeuristicPolicy {
    /// Batches strictly below this record count stay on the CPU.
    pub cpu_max_records: u64,
    /// Models with at most this many trees count as "simple" (GPU column
    /// of Fig. 1).
    pub simple_max_trees: usize,
}

impl Default for HeuristicPolicy {
    fn default() -> Self {
        Self {
            cpu_max_records: 5_000,
            simple_max_trees: 1,
        }
    }
}

impl HeuristicPolicy {
    fn pick_by_kind(
        &self,
        stats: &ModelStats,
        n_records: u64,
        backends: &[Box<dyn ScoringBackend>],
        kind: fn(&str) -> bool,
    ) -> Option<(usize, String, SimDuration)> {
        backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.supports(stats).is_ok() && kind(b.name()))
            .map(|(i, b)| {
                (
                    i,
                    b.name().to_string(),
                    b.estimate(stats, n_records).total(),
                )
            })
            .min_by(|a, b| a.2.cmp(&b.2))
    }
}

impl Policy for HeuristicPolicy {
    fn name(&self) -> &str {
        "static-heuristic"
    }

    fn choose(
        &self,
        stats: &ModelStats,
        n_records: u64,
        backends: &[Box<dyn ScoringBackend>],
    ) -> Option<Choice> {
        let is_cpu = |n: &str| n.starts_with("CPU");
        let is_gpu = |n: &str| n.starts_with("GPU");
        let is_fpga = |n: &str| n == "FPGA";
        let preference: [fn(&str) -> bool; 3] = if n_records < self.cpu_max_records {
            [is_cpu, is_fpga, is_gpu]
        } else if stats.n_trees <= self.simple_max_trees {
            [is_gpu, is_fpga, is_cpu]
        } else {
            [is_fpga, is_gpu, is_cpu]
        };
        preference.iter().find_map(|kind| {
            self.pick_by_kind(stats, n_records, backends, *kind)
                .map(|(index, _, predicted)| {
                    Choice::new(index, predicted, stats, n_records, backends)
                })
        })
    }
}

/// Fits each backend's cost as an affine function `t(n) = a + b*n` from two
/// probe points (a LogCA-style linear model) and picks the argmin. Cheaper
/// to evaluate than the full cost models at schedule time, but mispredicts
/// where real costs are nonlinear (cache cliffs, multi-pass boundaries).
#[derive(Debug, Clone, Copy)]
pub struct AffineFitPolicy {
    /// Small-probe batch size.
    pub probe_small: u64,
    /// Large-probe batch size.
    pub probe_large: u64,
}

impl Default for AffineFitPolicy {
    fn default() -> Self {
        Self {
            probe_small: 1,
            probe_large: 100_000,
        }
    }
}

impl Policy for AffineFitPolicy {
    fn name(&self) -> &str {
        "affine-fit"
    }

    fn choose(
        &self,
        stats: &ModelStats,
        n_records: u64,
        backends: &[Box<dyn ScoringBackend>],
    ) -> Option<Choice> {
        backends
            .iter()
            .enumerate()
            .filter(|(_, b)| b.supports(stats).is_ok())
            .map(|(i, b)| {
                let t0 = b.estimate(stats, self.probe_small).total().as_secs();
                let t1 = b.estimate(stats, self.probe_large).total().as_secs();
                let slope = (t1 - t0) / (self.probe_large - self.probe_small) as f64;
                let predicted = t0 + slope * (n_records.saturating_sub(self.probe_small)) as f64;
                (i, SimDuration::from_secs(predicted.max(0.0)))
            })
            .min_by(|a, b| a.1.cmp(&b.1))
            .map(|(index, predicted)| Choice::new(index, predicted, stats, n_records, backends))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_forest::{ForestConfig, RandomForest};

    fn stats(n_trees: usize, depth: usize, n_features: usize, n_classes: u32) -> ModelStats {
        ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(n_trees, n_features, n_classes).with_depth(depth),
            1,
        ))
    }

    #[test]
    fn oracle_picks_cpu_for_tiny_batches() {
        let backends = paper_backends();
        let s = stats(128, 10, 4, 3);
        let c = OraclePolicy.choose(&s, 1, &backends).unwrap();
        assert!(c.name.starts_with("CPU"), "chose {}", c.name);
    }

    #[test]
    fn oracle_picks_fpga_for_big_model_big_batch() {
        let backends = paper_backends();
        let s = stats(128, 10, 28, 2);
        let c = OraclePolicy.choose(&s, 1_000_000, &backends).unwrap();
        assert_eq!(c.name, "FPGA");
    }

    #[test]
    fn oracle_never_picks_unsupported() {
        let backends = paper_backends();
        // 3-class model: RAPIDS unsupported; depth 11: FPGA unsupported.
        let s = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(64, 4, 3).with_depth(11),
            1,
        ));
        let c = OraclePolicy.choose(&s, 1_000_000, &backends).unwrap();
        assert_ne!(c.name, "GPU-RAPIDS");
        assert_ne!(c.name, "FPGA");
    }

    #[test]
    fn heuristic_follows_fig1_regions() {
        let backends = paper_backends();
        let h = HeuristicPolicy::default();
        // Small batch: CPU.
        let c = h.choose(&stats(128, 10, 4, 3), 100, &backends).unwrap();
        assert!(c.name.starts_with("CPU"));
        // Large batch, simple model: GPU.
        let c = h.choose(&stats(1, 10, 4, 3), 1_000_000, &backends).unwrap();
        assert!(c.name.starts_with("GPU"), "chose {}", c.name);
        // Large batch, complex model: FPGA.
        let c = h
            .choose(&stats(128, 10, 28, 2), 1_000_000, &backends)
            .unwrap();
        assert_eq!(c.name, "FPGA");
    }

    #[test]
    fn heuristic_falls_back_when_preferred_kind_unsupported() {
        let backends = paper_backends();
        let h = HeuristicPolicy::default();
        // Deep model: FPGA unsupported; must fall back to GPU.
        let s = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(128, 4, 3).with_depth(12),
            1,
        ));
        let c = h.choose(&s, 1_000_000, &backends).unwrap();
        assert!(c.name.starts_with("GPU"), "chose {}", c.name);
    }

    #[test]
    fn affine_fit_agrees_with_oracle_in_linear_regions() {
        let backends = paper_backends();
        let s = stats(128, 10, 28, 2);
        let oracle = OraclePolicy.choose(&s, 1_000_000, &backends).unwrap();
        let fitted = AffineFitPolicy::default()
            .choose(&s, 1_000_000, &backends)
            .unwrap();
        assert_eq!(oracle.name, fitted.name);
    }

    #[test]
    fn empty_backend_set_yields_none() {
        let s = stats(1, 4, 4, 2);
        assert!(OraclePolicy.choose(&s, 10, &[]).is_none());
        assert!(HeuristicPolicy::default().choose(&s, 10, &[]).is_none());
        assert!(AffineFitPolicy::default().choose(&s, 10, &[]).is_none());
        assert!(
            choose_amortized_eligible(&s, 10, 1, &[], &|_| SimDuration::ZERO, &|_| true).is_none()
        );
    }

    #[test]
    fn amortized_eligible_reduces_to_oracle_and_respects_the_mask() {
        let backends = paper_backends();
        let s = stats(128, 10, 28, 2);
        let n = 1_000_000u64;
        let zero = |_: usize| SimDuration::ZERO;
        let oracle = OraclePolicy.choose(&s, n, &backends).unwrap();
        let open = choose_amortized_eligible(&s, n, 1, &backends, &zero, &|_| true).unwrap();
        assert_eq!(open, oracle);
        // Mask out the winner: the choice must move, never violate the mask.
        let masked =
            choose_amortized_eligible(&s, n, 1, &backends, &zero, &|i| i != oracle.index).unwrap();
        assert_ne!(masked.index, oracle.index);
        assert!(masked.predicted >= oracle.predicted);
        // Mask everything out: no choice.
        assert!(choose_amortized_eligible(&s, n, 1, &backends, &zero, &|_| false).is_none());
    }

    #[test]
    fn amortized_eligible_charges_prepare_per_reuse() {
        let backends = paper_backends();
        let s = stats(128, 10, 28, 2);
        let n = 1_000_000u64;
        let oracle = OraclePolicy.choose(&s, n, &backends).unwrap();
        assert_eq!(oracle.name, "FPGA");
        // A monster one-time compile on the winner flips a one-shot query...
        let prepare = |i: usize| {
            if backends[i].name() == "FPGA" {
                SimDuration::from_secs(100.0)
            } else {
                SimDuration::ZERO
            }
        };
        let once = choose_amortized_eligible(&s, n, 1, &backends, &prepare, &|_| true).unwrap();
        assert_ne!(once.name, "FPGA");
        // ...but washes out at high reuse.
        let amortized =
            choose_amortized_eligible(&s, n, 1_000_000, &backends, &prepare, &|_| true).unwrap();
        assert_eq!(amortized.name, "FPGA");
    }
}
