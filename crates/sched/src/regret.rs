//! Regret analysis: how much a policy loses to the oracle over a workload
//! grid — the quantitative version of the paper's mispick warnings.

use mlscore_backend::ScoringBackend;
use mlscore_forest::ModelStats;

use crate::policy::{OraclePolicy, Policy};

/// Aggregate regret of a policy across a workload grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RegretReport {
    /// Policy name.
    pub policy: String,
    /// Number of (model, batch) points evaluated.
    pub points: usize,
    /// Points where the policy picked a different backend than the oracle.
    pub mispicks: usize,
    /// Worst `policy_time / oracle_time` factor observed.
    pub worst_factor: f64,
    /// Mean `policy_time / oracle_time` factor.
    pub mean_factor: f64,
}

impl RegretReport {
    /// Fraction of points where the policy matched the oracle's pick.
    pub fn agreement(&self) -> f64 {
        if self.points == 0 {
            1.0
        } else {
            1.0 - self.mispicks as f64 / self.points as f64
        }
    }
}

/// Evaluates `policy` against the oracle over every `(stats, n_records)`
/// point, charging each point the modelled time of the backend the policy
/// picked.
///
/// # Panics
///
/// Panics if `backends` is empty or no backend supports some model.
pub fn evaluate_policy(
    policy: &dyn Policy,
    grid: &[(ModelStats, u64)],
    backends: &[Box<dyn ScoringBackend>],
) -> RegretReport {
    assert!(!backends.is_empty(), "need at least one backend");
    let oracle = OraclePolicy;
    let mut mispicks = 0usize;
    let mut worst = 1.0f64;
    let mut sum = 0.0f64;
    for (stats, n) in grid {
        let best = oracle
            .choose(stats, *n, backends)
            .expect("some backend must support the model");
        let picked = policy
            .choose(stats, *n, backends)
            .expect("some backend must support the model");
        if picked.index != best.index {
            mispicks += 1;
        }
        let actual = backends[picked.index].estimate(stats, *n).total();
        let factor = actual.ratio(best.predicted);
        worst = worst.max(factor);
        sum += factor;
    }
    RegretReport {
        policy: policy.name().to_string(),
        points: grid.len(),
        mispicks,
        worst_factor: worst,
        mean_factor: if grid.is_empty() {
            1.0
        } else {
            sum / grid.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{paper_backends, AffineFitPolicy, HeuristicPolicy};
    use mlscore_forest::{ForestConfig, RandomForest};

    fn grid() -> Vec<(ModelStats, u64)> {
        let mut g = Vec::new();
        for &(trees, features, classes) in &[(1usize, 4usize, 3u32), (32, 4, 3), (128, 28, 2)] {
            let stats = ModelStats::of(&RandomForest::synthetic_full(
                &ForestConfig::classification(trees, features, classes).with_depth(10),
                5,
            ));
            for &n in &[1u64, 1_000, 100_000, 1_000_000] {
                g.push((stats, n));
            }
        }
        g
    }

    #[test]
    fn oracle_has_zero_regret() {
        let backends = paper_backends();
        let r = evaluate_policy(&OraclePolicy, &grid(), &backends);
        assert_eq!(r.mispicks, 0);
        assert_eq!(r.worst_factor, 1.0);
        assert_eq!(r.mean_factor, 1.0);
        assert_eq!(r.agreement(), 1.0);
    }

    #[test]
    fn heuristic_regret_is_bounded_but_nonzero_sometimes() {
        let backends = paper_backends();
        let r = evaluate_policy(&HeuristicPolicy::default(), &grid(), &backends);
        assert_eq!(r.points, 12);
        assert!(r.worst_factor >= 1.0);
        assert!(r.mean_factor >= 1.0);
        // The static rule should still be sane: within ~20x of oracle.
        assert!(r.worst_factor < 20.0, "worst factor {}", r.worst_factor);
    }

    #[test]
    fn affine_fit_close_to_oracle() {
        let backends = paper_backends();
        let r = evaluate_policy(&AffineFitPolicy::default(), &grid(), &backends);
        assert!(r.mean_factor < 2.0, "mean factor {}", r.mean_factor);
    }

    #[test]
    fn never_offloading_costs_the_paper_penalty() {
        // A "CPU-only" policy: the paper says not offloading a heavy job
        // forfeits up to ~70x.
        struct CpuOnly;
        impl Policy for CpuOnly {
            fn name(&self) -> &str {
                "cpu-only"
            }
            fn choose(
                &self,
                stats: &ModelStats,
                n_records: u64,
                backends: &[Box<dyn ScoringBackend>],
            ) -> Option<crate::policy::Choice> {
                backends
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.name().starts_with("CPU") && b.supports(stats).is_ok())
                    .map(|(i, b)| (i, b.estimate(stats, n_records).total()))
                    .min_by(|a, b| a.1.cmp(&b.1))
                    .map(|(index, predicted)| {
                        crate::policy::Choice::new(index, predicted, stats, n_records, backends)
                    })
            }
        }
        let backends = paper_backends();
        let heavy = ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(128, 28, 2).with_depth(10),
            5,
        ));
        let r = evaluate_policy(&CpuOnly, &[(heavy, 1_000_000)], &backends);
        assert!(
            r.worst_factor > 20.0,
            "staying on CPU should cost dearly, factor {}",
            r.worst_factor
        );
    }
}
