//! An online scheduler that learns per-backend costs from observed runs.
//!
//! The paper's Fig. 1 scheduler must decide "dynamically" because models
//! and data arrive with the query. A production scheduler cannot probe the
//! true cost models; it can only observe the runs it actually executed.
//! [`AdaptiveScheduler`] does that: it keeps a per-(backend, model-class)
//! affine estimate `t(n) = a + b*n`, fitted by exponential smoothing over
//! observations, explores unobserved backends first, and then exploits the
//! learned estimates.

use std::collections::HashMap;

use mlscore_backend::{BackendError, ScoringBackend, ScoringRequest};
use mlscore_forest::{ModelStats, Predictions};
use mlscore_sim::{Clock, SimDuration};

use crate::policy::Choice;

/// Coarse model class used as the learning key: backends behave affinely in
/// records within a (tree-count, depth, feature-width) bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelClass {
    /// log2 bucket of tree count.
    pub trees_log2: u32,
    /// Tree depth.
    pub depth: usize,
    /// log2 bucket of feature count.
    pub features_log2: u32,
}

impl ModelClass {
    /// The bucket for a model.
    pub fn of(stats: &ModelStats) -> Self {
        Self {
            trees_log2: (stats.n_trees.max(1) as u32).ilog2(),
            depth: stats.max_depth,
            features_log2: (stats.n_features.max(1) as u32).ilog2(),
        }
    }
}

/// A smoothed affine cost estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AffineEstimate {
    /// Fixed cost in seconds.
    intercept: f64,
    /// Per-record cost in seconds.
    slope: f64,
    /// Observations folded in.
    observations: u32,
}

impl AffineEstimate {
    fn predict(&self, n_records: u64) -> f64 {
        self.intercept + self.slope * n_records as f64
    }
}

/// An online learner over a fixed backend roster.
///
/// # Example
///
/// ```
/// use mlscore_forest::{ForestConfig, ModelStats, RandomForest};
/// use mlscore_sched::{paper_backends, AdaptiveScheduler};
///
/// let backends = paper_backends();
/// let mut sched = AdaptiveScheduler::new(0.3);
/// let stats = ModelStats::of(&RandomForest::synthetic_full(
///     &ForestConfig::classification(128, 28, 2).with_depth(10), 1));
/// // Feed it a few observed runs, then it schedules from experience.
/// for _ in 0..8 {
///     let choice = sched.choose(&stats, 1_000_000, &backends).unwrap();
///     let observed = backends[choice.index].estimate(&stats, 1_000_000).total();
///     sched.observe(&stats, choice.index, 1_000_000, observed);
/// }
/// let settled = sched.choose(&stats, 1_000_000, &backends).unwrap();
/// assert_eq!(settled.name, "FPGA");
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveScheduler {
    estimates: HashMap<(ModelClass, usize), AffineEstimate>,
    /// Smoothed one-time prepare (compile) cost in seconds, learned from
    /// observed artifact-cache misses.
    prepare_costs: HashMap<(ModelClass, usize), f64>,
    /// Smoothing factor in `(0, 1]`: weight of the newest observation.
    alpha: f64,
}

impl AdaptiveScheduler {
    /// Creates a scheduler with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            estimates: HashMap::new(),
            prepare_costs: HashMap::new(),
            alpha,
        }
    }

    /// Number of distinct (model-class, backend) estimates learned.
    pub fn learned(&self) -> usize {
        self.estimates.len()
    }

    /// Folds one observed run into the estimates.
    pub fn observe(
        &mut self,
        stats: &ModelStats,
        backend_index: usize,
        n_records: u64,
        observed: SimDuration,
    ) {
        let key = (ModelClass::of(stats), backend_index);
        let t = observed.as_secs();
        let n = n_records.max(1) as f64;
        let entry = self.estimates.entry(key).or_insert(AffineEstimate {
            // First sight: attribute everything to the intercept for tiny
            // batches, to the slope for big ones.
            intercept: t.min(0.005),
            slope: (t / n).min(t),
            observations: 0,
        });
        entry.observations += 1;
        // Residual update: split the error between intercept (for small
        // batches) and slope (for large ones), smoothing by alpha.
        let predicted = entry.predict(n_records);
        let error = t - predicted;
        let batch_weight = n / (n + 10_000.0); // big batches inform the slope
        entry.slope += self.alpha * error * batch_weight / n;
        entry.intercept += self.alpha * error * (1.0 - batch_weight);
        entry.slope = entry.slope.max(0.0);
        entry.intercept = entry.intercept.max(0.0);
    }

    /// Folds one observed prepare (compile) cost into the amortization
    /// table — typically the wall-clock of an artifact-cache miss
    /// (`PrepareTiming::deserialize + lower`), smoothed like the scoring
    /// estimates.
    pub fn observe_prepare(&mut self, stats: &ModelStats, backend_index: usize, cost: SimDuration) {
        let key = (ModelClass::of(stats), backend_index);
        let c = cost.as_secs();
        let entry = self.prepare_costs.entry(key).or_insert(c);
        *entry += self.alpha * (c - *entry);
    }

    /// The learned prepare cost for a (model-class, backend), if observed.
    pub fn prepare_cost(&self, stats: &ModelStats, backend_index: usize) -> Option<SimDuration> {
        self.prepare_costs
            .get(&(ModelClass::of(stats), backend_index))
            .map(|&s| SimDuration::from_secs(s))
    }

    /// Executes `request` on `backends[backend_index]` *for real*, measures
    /// the scoring time on the injected `clock`, and folds the measurement
    /// into the estimates — the calibration path for functionally real
    /// backends (the CPU engines running on the executor pool), where
    /// modelled cost and achieved cost can drift.
    ///
    /// The scheduler itself never touches the wall clock: the
    /// `repro`/bench boundary injects [`mlscore_sim::WallClock`], tests
    /// inject a [`mlscore_sim::ManualClock`].
    ///
    /// Returns the predictions and the measured duration (1 s measured ↦
    /// 1 s simulated).
    ///
    /// # Errors
    ///
    /// Propagates the backend's scoring error; nothing is folded in on
    /// failure.
    ///
    /// # Panics
    ///
    /// Panics if `backend_index` is out of range.
    pub fn observe_measured(
        &mut self,
        stats: &ModelStats,
        backend_index: usize,
        backends: &[Box<dyn ScoringBackend>],
        request: &ScoringRequest<'_>,
        clock: &dyn Clock,
    ) -> Result<(Predictions, SimDuration), BackendError> {
        let t0 = clock.now();
        let predictions = backends[backend_index].score(request)?;
        let measured = clock.now().duration_since(t0);
        self.observe(stats, backend_index, request.n_records() as u64, measured);
        Ok((predictions, measured))
    }

    /// Schedules a batch: unobserved supported backends are explored first
    /// (round-robin by index), then the learned estimates are exploited.
    pub fn choose(
        &self,
        stats: &ModelStats,
        n_records: u64,
        backends: &[Box<dyn ScoringBackend>],
    ) -> Option<Choice> {
        let class = ModelClass::of(stats);
        let supported: Vec<usize> = (0..backends.len())
            .filter(|&i| backends[i].supports(stats).is_ok())
            .collect();
        // Exploration: any supported backend we have never run?
        if let Some(&index) = supported
            .iter()
            .find(|&&i| !self.estimates.contains_key(&(class, i)))
        {
            return Some(Choice::new(
                index,
                SimDuration::ZERO,
                stats,
                n_records,
                backends,
            ));
        }
        // Exploitation: argmin of learned estimates.
        supported
            .into_iter()
            .map(|i| {
                let est = self.estimates[&(class, i)];
                (i, est.predict(n_records))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(index, predicted)| {
                Choice::new(
                    index,
                    SimDuration::from_secs(predicted.max(0.0)),
                    stats,
                    n_records,
                    backends,
                )
            })
    }

    /// Like [`AdaptiveScheduler::choose`], but charges each backend its
    /// *amortized* compile cost: `t(n) + prepare / expected_reuse`, where
    /// `expected_reuse` is how many queries are expected to share the
    /// compiled artifact before it leaves the cache. With a reuse of 1
    /// every query pays its full compile (the cold regime, which penalizes
    /// backends with expensive lowering like the FPGA's BRAM placement);
    /// as reuse grows the compile term washes out and the decision
    /// converges to [`AdaptiveScheduler::choose`]. Backends with no
    /// observed prepare cost are charged nothing.
    pub fn choose_amortized(
        &self,
        stats: &ModelStats,
        n_records: u64,
        expected_reuse: u64,
        backends: &[Box<dyn ScoringBackend>],
    ) -> Option<Choice> {
        self.choose_amortized_among(stats, n_records, expected_reuse, backends, &|_| true)
    }

    /// [`AdaptiveScheduler::choose_amortized`] restricted to backends the
    /// `eligible` mask admits. The serving engine passes "this backend's
    /// device has a free slot right now", so arbitration never parks a
    /// query on a busy device while an idle one could serve it. Exploration
    /// also honours the mask: an unobserved backend is only probed when it
    /// is currently eligible.
    pub fn choose_amortized_among(
        &self,
        stats: &ModelStats,
        n_records: u64,
        expected_reuse: u64,
        backends: &[Box<dyn ScoringBackend>],
        eligible: &dyn Fn(usize) -> bool,
    ) -> Option<Choice> {
        let class = ModelClass::of(stats);
        let reuse = expected_reuse.max(1) as f64;
        let supported: Vec<usize> = (0..backends.len())
            .filter(|&i| backends[i].supports(stats).is_ok() && eligible(i))
            .collect();
        // Exploration first, exactly as in `choose`.
        if let Some(&index) = supported
            .iter()
            .find(|&&i| !self.estimates.contains_key(&(class, i)))
        {
            return Some(Choice::new(
                index,
                SimDuration::ZERO,
                stats,
                n_records,
                backends,
            ));
        }
        supported
            .into_iter()
            .map(|i| {
                let est = self.estimates[&(class, i)];
                let prepare = self.prepare_costs.get(&(class, i)).copied().unwrap_or(0.0);
                (i, est.predict(n_records) + prepare / reuse)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(index, predicted)| {
                Choice::new(
                    index,
                    SimDuration::from_secs(predicted.max(0.0)),
                    stats,
                    n_records,
                    backends,
                )
            })
    }

    /// Runs a full observe-choose loop against the backends' own cost
    /// models for `rounds` rounds at a fixed workload, returning the final
    /// choice. Convenience for simulations and tests.
    pub fn converge(
        &mut self,
        stats: &ModelStats,
        n_records: u64,
        backends: &[Box<dyn ScoringBackend>],
        rounds: usize,
    ) -> Option<Choice> {
        for _ in 0..rounds {
            let choice = self.choose(stats, n_records, backends)?;
            let observed = backends[choice.index].estimate(stats, n_records).total();
            self.observe(stats, choice.index, n_records, observed);
        }
        self.choose(stats, n_records, backends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{paper_backends, OraclePolicy, Policy};
    use mlscore_forest::{ForestConfig, RandomForest};

    fn stats(trees: usize, depth: usize, features: usize, classes: u32) -> ModelStats {
        ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(trees, features, classes).with_depth(depth),
            3,
        ))
    }

    #[test]
    fn explores_every_supported_backend_first() {
        let backends = paper_backends();
        let s = stats(16, 10, 28, 2);
        let mut sched = AdaptiveScheduler::new(0.5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..backends.len() {
            let c = sched.choose(&s, 1_000, &backends).unwrap();
            assert!(
                seen.insert(c.index),
                "revisited {} during exploration",
                c.name
            );
            let t = backends[c.index].estimate(&s, 1_000).total();
            sched.observe(&s, c.index, 1_000, t);
        }
        assert_eq!(seen.len(), backends.len());
    }

    #[test]
    fn converges_to_oracle_choice_for_fixed_workload() {
        let backends = paper_backends();
        for (s, n) in [
            (stats(128, 10, 28, 2), 1_000_000u64),
            (stats(128, 10, 4, 3), 100u64),
        ] {
            let oracle = OraclePolicy.choose(&s, n, &backends).unwrap();
            let mut sched = AdaptiveScheduler::new(0.4);
            let settled = sched.converge(&s, n, &backends, 20).unwrap();
            assert_eq!(settled.name, oracle.name, "at {n} records");
        }
    }

    #[test]
    fn model_classes_are_bucketed() {
        let a = ModelClass::of(&stats(128, 10, 28, 2));
        let b = ModelClass::of(&stats(130, 10, 28, 2));
        let c = ModelClass::of(&stats(1, 10, 28, 2));
        assert_eq!(a, b, "128 and 130 trees share a log2 bucket");
        assert_ne!(a, c);
    }

    #[test]
    fn learned_counts_estimates() {
        let backends = paper_backends();
        let s = stats(4, 6, 4, 3);
        let mut sched = AdaptiveScheduler::new(0.3);
        assert_eq!(sched.learned(), 0);
        sched.converge(&s, 1_000, &backends, 10);
        assert!(sched.learned() > 0);
    }

    #[test]
    fn observe_measured_runs_for_real_and_learns() {
        use mlscore_backend::{OnnxCpu, ScoringRequest, SklearnCpu};
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(8, 4, 3).with_depth(6), 5);
        let s = ModelStats::of(&forest);
        let frame = mlscore_data::TabularFrame::from_rows(
            (0..400).map(|i| (i as f32 * 0.29) % 1.0).collect(),
            4,
        )
        .unwrap();
        let request = ScoringRequest::new(&forest, &frame).unwrap();
        let backends: Vec<Box<dyn ScoringBackend>> = vec![
            Box::new(SklearnCpu::with_threads(2)),
            Box::new(OnnxCpu::single_thread()),
        ];
        let mut sched = AdaptiveScheduler::new(0.5);
        // Calibration against the host is the point here, so this test IS
        // the measurement boundary: inject the real clock.
        let clock = mlscore_sim::WallClock::new();
        for i in 0..backends.len() {
            let (preds, measured) = sched
                .observe_measured(&s, i, &backends, &request, &clock)
                .unwrap();
            assert_eq!(preds, forest.predict_batch(frame.as_slice()));
            assert!(measured > SimDuration::ZERO);
        }
        assert_eq!(sched.learned(), 2);
        // With every backend observed, the scheduler now exploits.
        let pick = sched.choose(&s, 100, &backends).unwrap();
        assert!(pick.predicted >= SimDuration::ZERO);
    }

    #[test]
    fn amortized_choice_accounts_for_compile_cost() {
        let backends = paper_backends();
        let s = stats(128, 10, 28, 2);
        let n = 1_000_000u64;
        let mut sched = AdaptiveScheduler::new(0.4);
        sched.converge(&s, n, &backends, 20);
        // Steady state (infinite reuse) favors the FPGA for the heavy
        // HIGGS-like workload...
        assert_eq!(sched.choose(&s, n, &backends).unwrap().name, "FPGA");
        // ...but charge it a monster one-time compile (BRAM placement) and
        // a one-shot query should flee to a backend with free lowering.
        for (i, b) in backends.iter().enumerate() {
            let cost = if b.name() == "FPGA" {
                SimDuration::from_secs(100.0)
            } else {
                SimDuration::ZERO
            };
            sched.observe_prepare(&s, i, cost);
        }
        assert_eq!(
            sched.prepare_cost(&s, 0).unwrap(),
            SimDuration::from_secs(if backends[0].name() == "FPGA" {
                100.0
            } else {
                0.0
            })
        );
        let once = sched.choose_amortized(&s, n, 1, &backends).unwrap();
        assert_ne!(
            once.name, "FPGA",
            "one-shot query must not pay 100 s of compile"
        );
        let amortized = sched.choose_amortized(&s, n, 1_000_000, &backends).unwrap();
        assert_eq!(amortized.name, "FPGA", "compile cost amortizes away");
    }

    #[test]
    fn amortized_matches_plain_choice_without_prepare_observations() {
        let backends = paper_backends();
        for (s, n) in [
            (stats(128, 10, 28, 2), 1_000_000u64),
            (stats(4, 6, 4, 3), 100u64),
        ] {
            let mut sched = AdaptiveScheduler::new(0.4);
            sched.converge(&s, n, &backends, 20);
            let plain = sched.choose(&s, n, &backends).unwrap();
            let amortized = sched.choose_amortized(&s, n, 1, &backends).unwrap();
            assert_eq!(plain.name, amortized.name);
            assert_eq!(plain.predicted, amortized.predicted);
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        AdaptiveScheduler::new(0.0);
    }

    #[test]
    fn amortized_among_respects_the_eligibility_mask() {
        let backends = paper_backends();
        let s = stats(128, 10, 28, 2);
        let n = 1_000_000u64;
        let mut sched = AdaptiveScheduler::new(0.4);
        sched.converge(&s, n, &backends, 20);
        let open = sched
            .choose_amortized_among(&s, n, 1, &backends, &|_| true)
            .unwrap();
        assert_eq!(
            open.name,
            sched.choose_amortized(&s, n, 1, &backends).unwrap().name
        );
        // Mask out the winner: the pick must move elsewhere.
        let masked = sched
            .choose_amortized_among(&s, n, 1, &backends, &|i| i != open.index)
            .unwrap();
        assert_ne!(masked.index, open.index);
        // Nothing eligible: no pick, even though everything is supported.
        assert!(sched
            .choose_amortized_among(&s, n, 1, &backends, &|_| false)
            .is_none());
        // Exploration honours the mask too: a fresh scheduler restricted to
        // one backend explores exactly that backend.
        let fresh = AdaptiveScheduler::new(0.4);
        let probe = fresh
            .choose_amortized_among(&s, n, 1, &backends, &|i| i == 4)
            .unwrap();
        assert_eq!(probe.index, 4);
    }

    #[test]
    fn interleaved_workloads_learn_independently() {
        // Learning the heavy workload must not corrupt the tiny workload's
        // decision (different model classes).
        let backends = paper_backends();
        let heavy = stats(128, 10, 28, 2);
        let tiny = stats(1, 6, 4, 3);
        let mut sched = AdaptiveScheduler::new(0.4);
        for _ in 0..15 {
            for (s, n) in [(&heavy, 1_000_000u64), (&tiny, 10u64)] {
                if let Some(c) = sched.choose(s, n, &backends) {
                    let t = backends[c.index].estimate(s, n).total();
                    sched.observe(s, c.index, n, t);
                }
            }
        }
        let heavy_pick = sched.choose(&heavy, 1_000_000, &backends).unwrap();
        let tiny_pick = sched.choose(&tiny, 10, &backends).unwrap();
        assert_eq!(heavy_pick.name, "FPGA");
        assert!(
            tiny_pick.name.starts_with("CPU"),
            "tiny pick {}",
            tiny_pick.name
        );
    }
}
