//! Trace-driven scheduling simulation.
//!
//! Fig. 1's premise is that queries arrive with *mixed* models and batch
//! sizes, so the offload decision must be made per query. This module
//! generates synthetic query traces (a skewed mix of the paper's model
//! shapes and batch sizes) and replays them through a policy, producing
//! total makespan, per-query latency percentiles, and the backend mix —
//! the numbers a capacity planner would actually look at.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlscore_backend::ScoringBackend;
use mlscore_data::DatasetSpec;
use mlscore_forest::{ForestConfig, ModelStats, RandomForest};
use mlscore_sim::{SimDuration, SimInstant};
use mlscore_telemetry::{Histogram, Tracer};

use crate::adaptive::AdaptiveScheduler;
use crate::policy::Policy;

/// One query in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceQuery {
    /// Model shape.
    pub stats: ModelStats,
    /// Batch size.
    pub n_records: u64,
}

/// A sequence of scoring queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    queries: Vec<TraceQuery>,
}

/// The paper's model-shape grid used by the synthetic traces: both
/// datasets x {1, 16, 128} trees x depths {6, 10}, each materialized as a
/// full synthetic forest with a shape-derived seed. The serving engine's
/// model catalog is built from this same function, so a trace shape index
/// identifies a concrete scorable model, not just its statistics.
pub fn paper_shape_forests() -> Vec<RandomForest> {
    let mut shapes = Vec::new();
    for dataset in DatasetSpec::all() {
        for trees in [1usize, 16, 128] {
            for depth in [6usize, 10] {
                let cfg =
                    ForestConfig::classification(trees, dataset.n_features(), dataset.n_classes())
                        .with_depth(depth);
                shapes.push(RandomForest::synthetic_full(
                    &cfg,
                    0xFEED ^ trees as u64 ^ (depth as u64) << 8,
                ));
            }
        }
    }
    shapes
}

impl QueryTrace {
    /// Wraps explicit queries.
    pub fn new(queries: Vec<TraceQuery>) -> Self {
        Self { queries }
    }

    /// The raw `(shape index, batch size)` draws behind
    /// [`QueryTrace::synthetic`]: shape indices are uniform over
    /// `0..n_shapes` and batch sizes are log-uniform over `1..10^6` (heavy
    /// small-query tail with occasional large scans). Exposed so workload
    /// generators that need the *model identity* (the serving engine keys
    /// its coalescer and artifact cache on the concrete bundle) can share
    /// the exact query mix with the stats-only trace.
    pub fn synthetic_draws(n: usize, seed: u64, n_shapes: usize) -> Vec<(usize, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let shape = rng.gen_range(0..n_shapes);
                let exponent: f64 = rng.gen_range(0.0..6.0);
                (shape, 10f64.powf(exponent).round() as u64)
            })
            .collect()
    }

    /// Generates `n` queries mixing the paper's model shapes
    /// ([`paper_shape_forests`]) with a heavy-tailed batch-size
    /// distribution: mostly small interactive lookups, occasionally huge
    /// analytical scans — the regime where static placement loses.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        let shapes: Vec<ModelStats> = paper_shape_forests().iter().map(ModelStats::of).collect();
        let queries = Self::synthetic_draws(n, seed, shapes.len())
            .into_iter()
            .map(|(shape, n_records)| TraceQuery {
                stats: shapes[shape],
                n_records,
            })
            .collect();
        Self { queries }
    }

    /// The queries.
    pub fn queries(&self) -> &[TraceQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// The result of replaying a trace through a policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutcome {
    /// Policy name.
    pub policy: String,
    /// Sum of per-query scoring times under the chosen backends.
    pub total: SimDuration,
    /// Per-query latencies, in trace order.
    pub latencies: Vec<SimDuration>,
    /// How many queries each backend received.
    pub picks: BTreeMap<String, usize>,
}

impl TraceOutcome {
    /// The latency distribution folded into the shared telemetry
    /// [`Histogram`] — the same type `repro scheduler` renders and the
    /// metrics registry aggregates.
    pub fn latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &latency in &self.latencies {
            h.record(latency);
        }
        h
    }

    /// The `p`-th latency percentile (`0 < p <= 100`), from the
    /// log-bucketed [`Histogram`] (nearest-rank bucket upper bound, clamped
    /// to the observed min/max).
    ///
    /// # Panics
    ///
    /// Panics on an empty outcome or `p` outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        self.latency_histogram().quantile(p / 100.0)
    }
}

/// Replays `trace` through `policy`, charging each query the modelled time
/// of the backend the policy picked.
///
/// # Panics
///
/// Panics if some query has no supporting backend.
#[deprecated(
    since = "0.1.0",
    note = "use mlscore-serve's ServeEngine (batch arrivals, serial device roster, coalescing \
            off reproduces this makespan exactly) — the serving engine models queueing and \
            device contention this loop ignores"
)]
pub fn replay(
    policy: &dyn Policy,
    trace: &QueryTrace,
    backends: &[Box<dyn ScoringBackend>],
) -> TraceOutcome {
    #[allow(deprecated)]
    replay_traced(policy, trace, backends, &Tracer::disabled())
}

/// Like [`replay`], but records one [`Scope::Detail`] span per query on
/// `tracer`: queries run back to back from the epoch (the makespan
/// timeline), each on the lane of the backend that served it, annotated
/// with the policy, backend, and batch size.
///
/// [`Scope::Detail`]: mlscore_telemetry::Scope::Detail
///
/// # Panics
///
/// Panics if some query has no supporting backend.
#[deprecated(
    since = "0.1.0",
    note = "use mlscore-serve's ServeEngine, which emits the same per-query spans plus \
            queue-wait and per-device lanes"
)]
pub fn replay_traced(
    policy: &dyn Policy,
    trace: &QueryTrace,
    backends: &[Box<dyn ScoringBackend>],
    tracer: &Tracer,
) -> TraceOutcome {
    let mut total = SimDuration::ZERO;
    let mut latencies = Vec::with_capacity(trace.len());
    let mut picks: BTreeMap<String, usize> = BTreeMap::new();
    let mut cursor = SimInstant::ZERO;
    for (i, q) in trace.queries().iter().enumerate() {
        let choice = policy
            .choose(&q.stats, q.n_records, backends)
            .expect("some backend must support every trace query");
        let latency = backends[choice.index]
            .estimate(&q.stats, q.n_records)
            .total();
        cursor = tracer
            .span(format!("query {i}"), cursor)
            .track("scheduler", choice.name.as_str())
            .meta("policy", policy.name())
            .meta("backend", choice.name.as_str())
            .meta("records", q.n_records.to_string())
            .finish_after(latency);
        total += latency;
        latencies.push(latency);
        *picks.entry(choice.name).or_default() += 1;
    }
    TraceOutcome {
        policy: policy.name().to_string(),
        total,
        latencies,
        picks,
    }
}

/// Replays a trace through an [`AdaptiveScheduler`], feeding each observed
/// run back into the learner as it goes (the online setting).
pub fn replay_adaptive(
    scheduler: &mut AdaptiveScheduler,
    trace: &QueryTrace,
    backends: &[Box<dyn ScoringBackend>],
) -> TraceOutcome {
    let mut total = SimDuration::ZERO;
    let mut latencies = Vec::with_capacity(trace.len());
    let mut picks: BTreeMap<String, usize> = BTreeMap::new();
    for q in trace.queries() {
        let choice = scheduler
            .choose(&q.stats, q.n_records, backends)
            .expect("some backend must support every trace query");
        let latency = backends[choice.index]
            .estimate(&q.stats, q.n_records)
            .total();
        scheduler.observe(&q.stats, choice.index, q.n_records, latency);
        total += latency;
        latencies.push(latency);
        *picks.entry(choice.name).or_default() += 1;
    }
    TraceOutcome {
        policy: "adaptive".to_string(),
        total,
        latencies,
        picks,
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy replay loop stays covered until it is removed
mod tests {
    use super::*;
    use crate::policy::{paper_backends, HeuristicPolicy, OraclePolicy};

    #[test]
    fn synthetic_draws_back_the_same_trace() {
        let shapes = paper_shape_forests();
        assert_eq!(shapes.len(), 12, "2 datasets x 3 tree counts x 2 depths");
        let stats: Vec<ModelStats> = shapes.iter().map(ModelStats::of).collect();
        let trace = QueryTrace::synthetic(50, 13);
        let draws = QueryTrace::synthetic_draws(50, 13, shapes.len());
        for (q, (shape, n_records)) in trace.queries().iter().zip(&draws) {
            assert_eq!(q.stats, stats[*shape]);
            assert_eq!(q.n_records, *n_records);
        }
    }

    #[test]
    fn synthetic_trace_is_deterministic_and_mixed() {
        let a = QueryTrace::synthetic(100, 5);
        let b = QueryTrace::synthetic(100, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
        // Batch sizes span several orders of magnitude.
        let min = a.queries().iter().map(|q| q.n_records).min().unwrap();
        let max = a.queries().iter().map(|q| q.n_records).max().unwrap();
        assert!(
            max / min.max(1) > 1_000,
            "trace not heavy-tailed: {min}..{max}"
        );
    }

    #[test]
    fn oracle_replay_lower_bounds_other_policies() {
        let backends = paper_backends();
        let trace = QueryTrace::synthetic(60, 9);
        let oracle = replay(&OraclePolicy, &trace, &backends);
        let heuristic = replay(&HeuristicPolicy::default(), &trace, &backends);
        assert!(oracle.total <= heuristic.total);
        assert_eq!(oracle.latencies.len(), 60);
    }

    #[test]
    fn oracle_uses_multiple_backends_on_a_mixed_trace() {
        let backends = paper_backends();
        let trace = QueryTrace::synthetic(120, 2);
        let outcome = replay(&OraclePolicy, &trace, &backends);
        assert!(
            outcome.picks.len() >= 2,
            "a mixed trace needs a mixed placement: {:?}",
            outcome.picks
        );
        let assigned: usize = outcome.picks.values().sum();
        assert_eq!(assigned, 120);
    }

    #[test]
    fn percentiles_are_ordered() {
        let backends = paper_backends();
        let trace = QueryTrace::synthetic(80, 4);
        let outcome = replay(&OraclePolicy, &trace, &backends);
        let p50 = outcome.percentile(50.0);
        let p95 = outcome.percentile(95.0);
        let p99 = outcome.percentile(99.0);
        assert!(p50 <= p95);
        assert!(p95 <= p99);
        assert!(p99 <= outcome.percentile(100.0));
    }

    #[test]
    fn adaptive_replay_approaches_oracle_on_repeated_mix() {
        let backends = paper_backends();
        // Repeat the same short mix many times so the learner converges.
        let base = QueryTrace::synthetic(10, 7);
        let repeated = QueryTrace::new((0..12).flat_map(|_| base.queries().to_vec()).collect());
        let oracle = replay(&OraclePolicy, &repeated, &backends);
        let mut sched = AdaptiveScheduler::new(0.4);
        // First pass pays the exploration bill (every backend gets probed,
        // including slow ones, on whatever batch arrives).
        let exploration = replay_adaptive(&mut sched, &repeated, &backends);
        assert!(exploration.total >= oracle.total);
        // Second pass runs on learned estimates and must sit close to the
        // oracle.
        let learned = replay_adaptive(&mut sched, &repeated, &backends);
        let factor = learned.total.ratio(oracle.total);
        assert!(factor < 1.5, "learned pass {factor}x oracle");
        assert!(learned.total <= exploration.total);
    }

    #[test]
    fn percentile_comes_from_the_shared_histogram() {
        let backends = paper_backends();
        let trace = QueryTrace::synthetic(50, 11);
        let outcome = replay(&OraclePolicy, &trace, &backends);
        let h = outcome.latency_histogram();
        assert_eq!(h.count(), 50);
        for p in [50.0, 95.0, 99.0, 100.0] {
            assert_eq!(outcome.percentile(p), h.quantile(p / 100.0));
        }
        assert_eq!(outcome.percentile(100.0), h.max());
    }

    #[test]
    fn traced_replay_records_one_span_per_query() {
        let backends = paper_backends();
        let trace = QueryTrace::synthetic(40, 3);
        let tracer = Tracer::new();
        let outcome = replay_traced(&OraclePolicy, &trace, &backends, &tracer);
        assert_eq!(outcome, replay(&OraclePolicy, &trace, &backends));
        let spans = tracer.take();
        assert_eq!(spans.len(), 40);
        // Back-to-back makespan timeline: each span starts where the
        // previous one ended, and the folded duration is the total.
        let events = spans.events();
        let mut sum = SimDuration::ZERO;
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                assert_eq!(ev.start, events[i - 1].end());
            }
            sum += ev.dur;
            assert_eq!(ev.metadata[0], ("policy".to_string(), "oracle".to_string()));
        }
        assert_eq!(sum, outcome.total);
    }

    #[test]
    #[should_panic(expected = "empty outcome")]
    fn percentile_of_empty_outcome_panics() {
        let outcome = TraceOutcome {
            policy: "x".into(),
            total: SimDuration::ZERO,
            latencies: vec![],
            picks: BTreeMap::new(),
        };
        outcome.percentile(50.0);
    }
}
