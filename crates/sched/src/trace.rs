//! Trace-driven scheduling simulation.
//!
//! Fig. 1's premise is that queries arrive with *mixed* models and batch
//! sizes, so the offload decision must be made per query. This module
//! generates synthetic query traces (a skewed mix of the paper's model
//! shapes and batch sizes) and replays them through the online
//! [`AdaptiveScheduler`] via [`replay_adaptive`]. Fixed-policy replay
//! (the old `replay`/`replay_traced` loop) lives in `mlscore-serve`'s
//! `ServeEngine`, which additionally models queueing and device
//! contention; with coalescing off it reproduces the legacy makespan
//! exactly.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mlscore_backend::ScoringBackend;
use mlscore_data::DatasetSpec;
use mlscore_forest::{ForestConfig, ModelStats, RandomForest};
use mlscore_sim::SimDuration;
use mlscore_telemetry::Histogram;

use crate::adaptive::AdaptiveScheduler;

/// One query in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceQuery {
    /// Model shape.
    pub stats: ModelStats,
    /// Batch size.
    pub n_records: u64,
}

/// A sequence of scoring queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    queries: Vec<TraceQuery>,
}

/// The paper's model-shape grid used by the synthetic traces: both
/// datasets x {1, 16, 128} trees x depths {6, 10}, each materialized as a
/// full synthetic forest with a shape-derived seed. The serving engine's
/// model catalog is built from this same function, so a trace shape index
/// identifies a concrete scorable model, not just its statistics.
pub fn paper_shape_forests() -> Vec<RandomForest> {
    let mut shapes = Vec::new();
    for dataset in DatasetSpec::all() {
        for trees in [1usize, 16, 128] {
            for depth in [6usize, 10] {
                let cfg =
                    ForestConfig::classification(trees, dataset.n_features(), dataset.n_classes())
                        .with_depth(depth);
                shapes.push(RandomForest::synthetic_full(
                    &cfg,
                    0xFEED ^ trees as u64 ^ (depth as u64) << 8,
                ));
            }
        }
    }
    shapes
}

impl QueryTrace {
    /// Wraps explicit queries.
    pub fn new(queries: Vec<TraceQuery>) -> Self {
        Self { queries }
    }

    /// The raw `(shape index, batch size)` draws behind
    /// [`QueryTrace::synthetic`]: shape indices are uniform over
    /// `0..n_shapes` and batch sizes are log-uniform over `1..10^6` (heavy
    /// small-query tail with occasional large scans). Exposed so workload
    /// generators that need the *model identity* (the serving engine keys
    /// its coalescer and artifact cache on the concrete bundle) can share
    /// the exact query mix with the stats-only trace.
    pub fn synthetic_draws(n: usize, seed: u64, n_shapes: usize) -> Vec<(usize, u64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let shape = rng.gen_range(0..n_shapes);
                let exponent: f64 = rng.gen_range(0.0..6.0);
                (shape, 10f64.powf(exponent).round() as u64)
            })
            .collect()
    }

    /// Generates `n` queries mixing the paper's model shapes
    /// ([`paper_shape_forests`]) with a heavy-tailed batch-size
    /// distribution: mostly small interactive lookups, occasionally huge
    /// analytical scans — the regime where static placement loses.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        let shapes: Vec<ModelStats> = paper_shape_forests().iter().map(ModelStats::of).collect();
        let queries = Self::synthetic_draws(n, seed, shapes.len())
            .into_iter()
            .map(|(shape, n_records)| TraceQuery {
                stats: shapes[shape],
                n_records,
            })
            .collect();
        Self { queries }
    }

    /// The queries.
    pub fn queries(&self) -> &[TraceQuery] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// The result of replaying a trace through a policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOutcome {
    /// Policy name.
    pub policy: String,
    /// Sum of per-query scoring times under the chosen backends.
    pub total: SimDuration,
    /// Per-query latencies, in trace order.
    pub latencies: Vec<SimDuration>,
    /// How many queries each backend received.
    pub picks: BTreeMap<String, usize>,
}

impl TraceOutcome {
    /// The latency distribution folded into the shared telemetry
    /// [`Histogram`] — the same type `repro scheduler` renders and the
    /// metrics registry aggregates.
    pub fn latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &latency in &self.latencies {
            h.record(latency);
        }
        h
    }

    /// The `p`-th latency percentile (`0 < p <= 100`), from the
    /// log-bucketed [`Histogram`] (nearest-rank bucket upper bound, clamped
    /// to the observed min/max).
    ///
    /// # Panics
    ///
    /// Panics on an empty outcome or `p` outside `(0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!(p > 0.0 && p <= 100.0, "percentile out of range");
        self.latency_histogram().quantile(p / 100.0)
    }
}

/// Replays a trace through an [`AdaptiveScheduler`], feeding each observed
/// run back into the learner as it goes (the online setting).
pub fn replay_adaptive(
    scheduler: &mut AdaptiveScheduler,
    trace: &QueryTrace,
    backends: &[Box<dyn ScoringBackend>],
) -> TraceOutcome {
    let mut total = SimDuration::ZERO;
    let mut latencies = Vec::with_capacity(trace.len());
    let mut picks: BTreeMap<String, usize> = BTreeMap::new();
    for q in trace.queries() {
        let choice = scheduler
            .choose(&q.stats, q.n_records, backends)
            .expect("some backend must support every trace query");
        let latency = backends[choice.index]
            .estimate(&q.stats, q.n_records)
            .total();
        scheduler.observe(&q.stats, choice.index, q.n_records, latency);
        total += latency;
        latencies.push(latency);
        *picks.entry(choice.name).or_default() += 1;
    }
    TraceOutcome {
        policy: "adaptive".to_string(),
        total,
        latencies,
        picks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{paper_backends, HeuristicPolicy, OraclePolicy, Policy};

    /// Serial fixed-policy replay, local to these tests: the production
    /// equivalent is `mlscore-serve`'s `ServeEngine` (which adds queueing
    /// and device contention); this loop exists only to exercise
    /// [`TraceOutcome`] and the policies over synthetic traces.
    fn replay_policy(
        policy: &dyn Policy,
        trace: &QueryTrace,
        backends: &[Box<dyn ScoringBackend>],
    ) -> TraceOutcome {
        let mut total = SimDuration::ZERO;
        let mut latencies = Vec::with_capacity(trace.len());
        let mut picks: BTreeMap<String, usize> = BTreeMap::new();
        for q in trace.queries() {
            let choice = policy
                .choose(&q.stats, q.n_records, backends)
                .expect("some backend must support every trace query");
            let latency = backends[choice.index]
                .estimate(&q.stats, q.n_records)
                .total();
            total += latency;
            latencies.push(latency);
            *picks.entry(choice.name).or_default() += 1;
        }
        TraceOutcome {
            policy: policy.name().to_string(),
            total,
            latencies,
            picks,
        }
    }

    #[test]
    fn synthetic_draws_back_the_same_trace() {
        let shapes = paper_shape_forests();
        assert_eq!(shapes.len(), 12, "2 datasets x 3 tree counts x 2 depths");
        let stats: Vec<ModelStats> = shapes.iter().map(ModelStats::of).collect();
        let trace = QueryTrace::synthetic(50, 13);
        let draws = QueryTrace::synthetic_draws(50, 13, shapes.len());
        for (q, (shape, n_records)) in trace.queries().iter().zip(&draws) {
            assert_eq!(q.stats, stats[*shape]);
            assert_eq!(q.n_records, *n_records);
        }
    }

    #[test]
    fn synthetic_trace_is_deterministic_and_mixed() {
        let a = QueryTrace::synthetic(100, 5);
        let b = QueryTrace::synthetic(100, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
        // Batch sizes span several orders of magnitude.
        let min = a.queries().iter().map(|q| q.n_records).min().unwrap();
        let max = a.queries().iter().map(|q| q.n_records).max().unwrap();
        assert!(
            max / min.max(1) > 1_000,
            "trace not heavy-tailed: {min}..{max}"
        );
    }

    #[test]
    fn oracle_replay_lower_bounds_other_policies() {
        let backends = paper_backends();
        let trace = QueryTrace::synthetic(60, 9);
        let oracle = replay_policy(&OraclePolicy, &trace, &backends);
        let heuristic = replay_policy(&HeuristicPolicy::default(), &trace, &backends);
        assert!(oracle.total <= heuristic.total);
        assert_eq!(oracle.latencies.len(), 60);
    }

    #[test]
    fn oracle_uses_multiple_backends_on_a_mixed_trace() {
        let backends = paper_backends();
        let trace = QueryTrace::synthetic(120, 2);
        let outcome = replay_policy(&OraclePolicy, &trace, &backends);
        assert!(
            outcome.picks.len() >= 2,
            "a mixed trace needs a mixed placement: {:?}",
            outcome.picks
        );
        let assigned: usize = outcome.picks.values().sum();
        assert_eq!(assigned, 120);
    }

    #[test]
    fn percentiles_are_ordered() {
        let backends = paper_backends();
        let trace = QueryTrace::synthetic(80, 4);
        let outcome = replay_policy(&OraclePolicy, &trace, &backends);
        let p50 = outcome.percentile(50.0);
        let p95 = outcome.percentile(95.0);
        let p99 = outcome.percentile(99.0);
        assert!(p50 <= p95);
        assert!(p95 <= p99);
        assert!(p99 <= outcome.percentile(100.0));
    }

    #[test]
    fn adaptive_replay_approaches_oracle_on_repeated_mix() {
        let backends = paper_backends();
        // Repeat the same short mix many times so the learner converges.
        let base = QueryTrace::synthetic(10, 7);
        let repeated = QueryTrace::new((0..12).flat_map(|_| base.queries().to_vec()).collect());
        let oracle = replay_policy(&OraclePolicy, &repeated, &backends);
        let mut sched = AdaptiveScheduler::new(0.4);
        // First pass pays the exploration bill (every backend gets probed,
        // including slow ones, on whatever batch arrives).
        let exploration = replay_adaptive(&mut sched, &repeated, &backends);
        assert!(exploration.total >= oracle.total);
        // Second pass runs on learned estimates and must sit close to the
        // oracle.
        let learned = replay_adaptive(&mut sched, &repeated, &backends);
        let factor = learned.total.ratio(oracle.total);
        assert!(factor < 1.5, "learned pass {factor}x oracle");
        assert!(learned.total <= exploration.total);
    }

    #[test]
    fn percentile_comes_from_the_shared_histogram() {
        let backends = paper_backends();
        let trace = QueryTrace::synthetic(50, 11);
        let outcome = replay_policy(&OraclePolicy, &trace, &backends);
        let h = outcome.latency_histogram();
        assert_eq!(h.count(), 50);
        for p in [50.0, 95.0, 99.0, 100.0] {
            assert_eq!(outcome.percentile(p), h.quantile(p / 100.0));
        }
        assert_eq!(outcome.percentile(100.0), h.max());
    }

    #[test]
    #[should_panic(expected = "empty outcome")]
    fn percentile_of_empty_outcome_panics() {
        let outcome = TraceOutcome {
            policy: "x".into(),
            total: SimDuration::ZERO,
            latencies: vec![],
            picks: BTreeMap::new(),
        };
        outcome.percentile(50.0);
    }
}
