//! Backend-selection policies.
//!
//! Fig. 1 of the paper argues that "a scheduler that aims for the best
//! performance would need to make the accelerator offloading decisions
//! dynamically" because models and data arrive with the query. This crate
//! provides that scheduler in three strengths — an oracle over the cost
//! models, the static threshold heuristic Fig. 1 suggests, and an affine
//! (LogCA-style) fitted predictor — plus regret analysis quantifying the
//! paper's mispick penalties (a wrong offload costs up to ~10x latency; a
//! wrong stay-on-CPU costs up to ~70x throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod policy;
pub mod regret;
pub mod trace;

pub use adaptive::{AdaptiveScheduler, ModelClass};
pub use policy::{
    choose_amortized_eligible, paper_backends, AffineFitPolicy, Choice, HeuristicPolicy,
    OraclePolicy, Policy,
};
pub use regret::{evaluate_policy, RegretReport};
pub use trace::{paper_shape_forests, replay_adaptive, QueryTrace, TraceOutcome, TraceQuery};
