//! The inference engine: functional execution plus a cycle model.

use serde::{Deserialize, Serialize};

use mlscore_forest::{FlatForest, FlatTree, Predictions, RandomForest, Task};

use crate::bram::BramAllocator;
use crate::device::FpgaDevice;
use crate::error::FpgaError;

/// How the host learns that a pass finished. The paper uses an interrupt
/// and observes it costs more than the CSR-based setup; a polling driver
/// trades that latency for host CPU cycles spent reading the status
/// register.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CompletionMode {
    /// Interrupt-driven completion (the paper's design).
    Interrupt,
    /// The host polls the status CSR every `interval`; expected detection
    /// delay is half the interval plus one register read.
    Polling {
        /// Poll period.
        interval: mlscore_sim::SimDuration,
    },
}

/// Where tree memories live — on-chip BRAM (the paper's design) or external
/// DDR (the A2 ablation: same engine, slower node reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryBackend {
    /// On-chip BRAM: one node read per cycle, initiation interval 1.
    Bram,
    /// External DDR: node reads stall the pipeline, initiation interval > 1.
    Ddr,
}

impl MemoryBackend {
    /// Pipeline initiation interval in cycles per record for this memory.
    pub fn initiation_interval(self) -> u64 {
        match self {
            MemoryBackend::Bram => 1,
            MemoryBackend::Ddr => 4,
        }
    }
}

/// Engine build-time configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Maximum supported tree depth (10 in the paper — bounded by BRAM).
    pub max_depth: usize,
    /// Number of processing elements, one tree each (128 in the paper).
    pub pe_count: usize,
    /// Capacity of the on-chip result memory, in records; larger batches
    /// flush results to the host in segments.
    pub result_buffer_records: usize,
    /// Tree memory placement.
    pub memory: MemoryBackend,
    /// Completion signalling mode.
    pub completion: CompletionMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_depth: 10,
            pe_count: 128,
            result_buffer_records: 4 << 20,
            memory: MemoryBackend::Bram,
            completion: CompletionMode::Interrupt,
        }
    }
}

/// A model resident in the engine's tree memories, ready to score.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedModel {
    flat: FlatForest,
    passes: usize,
    model_bytes: u64,
    bram: BramAllocator,
}

impl LoadedModel {
    /// Number of engine passes needed (`ceil(trees / pe_count)`); the paper:
    /// "if the number of trees is greater than 128, we need to call the
    /// inference engine multiple times".
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Total model image size transferred to tree memories, in bytes.
    pub fn model_bytes(&self) -> u64 {
        self.model_bytes
    }

    /// The BRAM plan for this load.
    pub fn bram(&self) -> &BramAllocator {
        &self.bram
    }

    /// The flat-encoded model.
    pub fn flat(&self) -> &FlatForest {
        &self.flat
    }
}

/// Per-run cycle accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Engine passes executed.
    pub passes: usize,
    /// Pipeline fill cycles per pass (tree depth plus voting latency).
    pub fill_cycles: u64,
    /// Streaming cycles across all passes (records × initiation interval).
    pub streaming_cycles: u64,
    /// Total cycles across all passes.
    pub total_cycles: u64,
    /// Result-memory flushes to the host.
    pub result_flushes: usize,
}

/// The outcome of one engine run: real predictions plus cycle accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRun {
    /// Predictions from the majority-voting unit (or averaging for
    /// regression).
    pub predictions: Predictions,
    /// Cycle accounting for the run.
    pub report: CycleReport,
}

/// The random forest inference engine (Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceEngine {
    device: FpgaDevice,
    config: EngineConfig,
}

impl InferenceEngine {
    /// Creates an engine on `device` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `pe_count` or `result_buffer_records` is zero.
    pub fn new(device: FpgaDevice, config: EngineConfig) -> Self {
        assert!(config.pe_count > 0, "engine needs at least one PE");
        assert!(
            config.result_buffer_records > 0,
            "result memory cannot be empty"
        );
        Self { device, config }
    }

    /// The paper's engine: 128 PEs, depth 10, BRAM-resident, on the
    /// Stratix 10.
    pub fn paper_default() -> Self {
        Self::new(FpgaDevice::stratix10_gx2800(), EngineConfig::default())
    }

    /// The device.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Encodes and loads a model, planning BRAM.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::DepthExceeded`] for trees deeper than the engine
    /// supports, and [`FpgaError::BramExceeded`] when tree memories plus the
    /// result memory exceed on-chip capacity (only checked for the BRAM
    /// memory backend).
    pub fn load(&self, forest: &RandomForest) -> Result<LoadedModel, FpgaError> {
        let flat = FlatForest::from_forest(forest, self.config.max_depth)?;
        let passes = forest.n_trees().div_ceil(self.config.pe_count);
        let tree_mem_bytes = (FlatTree::capacity_for_depth(self.config.max_depth) * 16) as u64;
        let mut bram = BramAllocator::new(self.device.bram_bytes);
        if self.config.memory == MemoryBackend::Bram {
            let resident_trees = forest.n_trees().min(self.config.pe_count) as u64;
            bram.alloc("tree memories", resident_trees * tree_mem_bytes)?;
            bram.alloc(
                "result memory",
                (self.config.result_buffer_records * 4) as u64,
            )?;
            bram.alloc("input staging", (self.config.pe_count * 256) as u64)?;
        }
        Ok(LoadedModel {
            model_bytes: flat.footprint_bytes() as u64,
            flat,
            passes,
            bram,
        })
    }

    /// Runs the engine over `records` (row-major), producing predictions
    /// and cycle accounting.
    ///
    /// Functionally: pass `p` maps trees `p*PE .. (p+1)*PE` onto the PEs;
    /// every record flows through the pipeline once per pass; per-tree
    /// outcomes accumulate into the voting unit, which emits the final
    /// class (ties to the lowest id, like every backend) or the average for
    /// regression.
    ///
    /// # Panics
    ///
    /// Panics if `records.len()` is not a multiple of the model's feature
    /// count.
    pub fn execute(&self, model: &LoadedModel, records: &[f32]) -> EngineRun {
        let n_features = model.flat.n_features();
        assert_eq!(
            records.len() % n_features,
            0,
            "records length must be a multiple of the feature count"
        );
        let n_records = records.len() / n_features;
        let trees = model.flat.trees();
        let predictions = match model.flat.task() {
            Task::Classification { n_classes } => {
                let mut votes = vec![0u32; n_records * n_classes as usize];
                for pass in trees.chunks(self.config.pe_count) {
                    for (i, row) in records.chunks_exact(n_features).enumerate() {
                        for tree in pass {
                            let class = tree.score(row) as usize;
                            votes[i * n_classes as usize + class] += 1;
                        }
                    }
                }
                Predictions::Classes(
                    votes
                        .chunks_exact(n_classes as usize)
                        .map(RandomForest::majority)
                        .collect(),
                )
            }
            Task::Regression => {
                let mut sums = vec![0f32; n_records];
                for pass in trees.chunks(self.config.pe_count) {
                    for (i, row) in records.chunks_exact(n_features).enumerate() {
                        for tree in pass {
                            sums[i] += tree.score(row);
                        }
                    }
                }
                Predictions::Values(sums.into_iter().map(|s| s / trees.len() as f32).collect())
            }
        };
        EngineRun {
            predictions,
            report: self.cycle_report(model, n_records as u64),
        }
    }

    /// Cycle accounting for scoring `n_records`, independent of data values
    /// (the pipeline is fully data-oblivious: every record takes the same
    /// slots regardless of its path).
    pub fn cycle_report(&self, model: &LoadedModel, n_records: u64) -> CycleReport {
        let ii = self.config.memory.initiation_interval();
        // Fill: one level per cycle down the tree plus the voting tree
        // (log2 of PE count) and output registration.
        let fill = self.config.max_depth as u64 + (self.config.pe_count as u64).ilog2() as u64 + 2;
        let streaming = n_records * ii;
        let passes = model.passes as u64;
        CycleReport {
            passes: model.passes,
            fill_cycles: fill,
            streaming_cycles: streaming * passes,
            total_cycles: passes * (fill + streaming),
            result_flushes: (n_records as usize)
                .div_ceil(self.config.result_buffer_records)
                .max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_data::Dataset;
    use mlscore_forest::ForestConfig;

    fn engine() -> InferenceEngine {
        InferenceEngine::paper_default()
    }

    #[test]
    fn predictions_match_reference_iris() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(12, 4, 3).with_depth(8), 5);
        let data = Dataset::iris(200, 9).normalized();
        let model = engine().load(&forest).unwrap();
        let run = engine().execute(&model, data.frame().as_slice());
        assert_eq!(
            run.predictions,
            forest.predict_batch(data.frame().as_slice())
        );
    }

    #[test]
    fn multi_pass_votes_accumulate_correctly() {
        // 300 trees > 128 PEs: 3 passes, same predictions as reference.
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(300, 4, 3).with_depth(4), 6);
        let data = Dataset::iris(50, 2).normalized();
        let model = engine().load(&forest).unwrap();
        assert_eq!(model.passes(), 3);
        let run = engine().execute(&model, data.frame().as_slice());
        assert_eq!(
            run.predictions,
            forest.predict_batch(data.frame().as_slice())
        );
        assert_eq!(run.report.passes, 3);
    }

    #[test]
    fn regression_averaging() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::regression(10, 3).with_depth(5), 8);
        let records: Vec<f32> = (0..30).map(|i| (i as f32 * 0.13) % 1.0).collect();
        let model = engine().load(&forest).unwrap();
        let run = engine().execute(&model, &records);
        let reference = forest.predict_batch(&records);
        let (got, want) = (
            run.predictions.as_values().unwrap(),
            reference.as_values().unwrap(),
        );
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn deep_trees_rejected() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 2).with_depth(11), 1);
        let err = engine().load(&forest).unwrap_err();
        assert_eq!(
            err,
            FpgaError::DepthExceeded {
                depth: 11,
                max_depth: 10
            }
        );
    }

    #[test]
    fn paper_configuration_fits_bram() {
        // 128 trees x depth 10: 128 x 2048 records x 16 B = 4 MiB of tree
        // memory — comfortably inside 28.6 MB alongside the result memory.
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(128, 28, 2).with_depth(10),
            3,
        );
        let model = engine().load(&forest).unwrap();
        assert_eq!(model.passes(), 1);
        assert!(model.bram().used_bytes() <= model.bram().capacity());
    }

    #[test]
    fn oversized_result_buffer_exceeds_bram() {
        let cfg = EngineConfig {
            result_buffer_records: 16 << 20, // 64 MB of result memory
            ..EngineConfig::default()
        };
        let e = InferenceEngine::new(FpgaDevice::stratix10_gx2800(), cfg);
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 2).with_depth(4), 1);
        assert!(matches!(
            e.load(&forest).unwrap_err(),
            FpgaError::BramExceeded { .. }
        ));
    }

    #[test]
    fn ddr_backend_skips_bram_check_but_slows_pipeline() {
        let cfg = EngineConfig {
            memory: MemoryBackend::Ddr,
            result_buffer_records: 16 << 20,
            ..EngineConfig::default()
        };
        let e = InferenceEngine::new(FpgaDevice::stratix10_gx2800(), cfg);
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(8, 4, 2).with_depth(6), 2);
        let model = e.load(&forest).unwrap();
        let report = e.cycle_report(&model, 1000);
        let bram_report = engine().cycle_report(&engine().load(&forest).unwrap(), 1000);
        assert_eq!(report.streaming_cycles, 4 * bram_report.streaming_cycles);
    }

    #[test]
    fn cycle_counts_are_pipelined() {
        // 1M records in one pass: ~1M cycles + fill, i.e. ~4 ms at 250 MHz.
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(128, 4, 2).with_depth(10),
            1,
        );
        let model = engine().load(&forest).unwrap();
        let report = engine().cycle_report(&model, 1_000_000);
        assert_eq!(report.passes, 1);
        assert!(report.total_cycles < 1_000_100);
        assert!(report.total_cycles >= 1_000_000);
    }

    #[test]
    fn result_flushes_scale_with_batch() {
        let cfg = EngineConfig {
            result_buffer_records: 100,
            ..EngineConfig::default()
        };
        let e = InferenceEngine::new(FpgaDevice::stratix10_gx2800(), cfg);
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(1, 4, 2).with_depth(4), 1);
        let model = e.load(&forest).unwrap();
        assert_eq!(e.cycle_report(&model, 1).result_flushes, 1);
        assert_eq!(e.cycle_report(&model, 250).result_flushes, 3);
    }
}
