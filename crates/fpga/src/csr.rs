//! Control/Status Register (CSR) model.
//!
//! The paper's engine is configured through CSRs and signals completion
//! through an interrupt ("FPGA setup overhead is less than completion
//! signal overhead because the former one is done by setting Control/Status
//! Registers and latter is done through interrupt"). This module models the
//! register file and the driver sequence that arms one engine pass, so the
//! setup cost in the timing model is *derived* from the register protocol
//! rather than being a loose constant.

use serde::{Deserialize, Serialize};

use mlscore_sim::SimDuration;

/// The engine's register map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Reg {
    /// Control: bit 0 = start, bit 1 = reset.
    Control = 0,
    /// Status (read-only): bit 0 = busy, bit 1 = done, bit 2 = error.
    Status = 1,
    /// Number of records in the batch.
    RecordCount = 2,
    /// Number of trees resident in the PEs for this pass.
    TreeCount = 3,
    /// Index of the current pass (for multi-pass models).
    PassIndex = 4,
    /// DMA base address of the result memory flush target.
    ResultBase = 5,
    /// Interrupt enable.
    InterruptEnable = 6,
}

/// Control-register start bit.
pub const CTRL_START: u32 = 1 << 0;
/// Control-register reset bit.
pub const CTRL_RESET: u32 = 1 << 1;
/// Status busy bit.
pub const STATUS_BUSY: u32 = 1 << 0;
/// Status done bit.
pub const STATUS_DONE: u32 = 1 << 1;

/// A little register file with an access log, so tests (and the timing
/// model) can account for exactly how many MMIO operations a driver
/// sequence performs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrFile {
    regs: [u32; 7],
    writes: u32,
    reads: u32,
}

impl CsrFile {
    /// A freshly reset register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a register.
    pub fn write(&mut self, reg: Reg, value: u32) {
        self.regs[reg as usize] = value;
        self.writes += 1;
    }

    /// Reads a register.
    pub fn read(&mut self, reg: Reg) -> u32 {
        self.reads += 1;
        self.regs[reg as usize]
    }

    /// MMIO writes performed so far.
    pub fn writes(&self) -> u32 {
        self.writes
    }

    /// MMIO reads performed so far.
    pub fn reads(&self) -> u32 {
        self.reads
    }

    /// Hardware-side status update (not counted as an MMIO access).
    pub fn set_status(&mut self, value: u32) {
        self.regs[Reg::Status as usize] = value;
    }
}

/// The driver sequence arming one engine pass; returns the armed register
/// file. The sequence is: reset, record count, tree count, pass index,
/// result base, interrupt enable, start — i.e. [`SETUP_WRITES_PER_PASS`]
/// MMIO writes.
pub fn arm_pass(records: u32, trees: u32, pass: u32) -> CsrFile {
    let mut csr = CsrFile::new();
    csr.write(Reg::Control, CTRL_RESET);
    csr.write(Reg::RecordCount, records);
    csr.write(Reg::TreeCount, trees);
    csr.write(Reg::PassIndex, pass);
    csr.write(Reg::ResultBase, 0);
    csr.write(Reg::InterruptEnable, 1);
    csr.write(Reg::Control, CTRL_START);
    csr.set_status(STATUS_BUSY);
    csr
}

/// MMIO writes per pass performed by [`arm_pass`].
pub const SETUP_WRITES_PER_PASS: u32 = 7;

/// Setup time of one pass given the per-MMIO-write cost: the timing-model
/// quantity behind the Fig. 7 "FPGA setup" bar.
pub fn setup_time(csr_write: SimDuration) -> SimDuration {
    csr_write * SETUP_WRITES_PER_PASS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_pass_performs_the_documented_writes() {
        let csr = arm_pass(1_000, 128, 0);
        assert_eq!(csr.writes(), SETUP_WRITES_PER_PASS);
        assert_eq!(csr.reads(), 0);
    }

    #[test]
    fn armed_registers_hold_the_workload() {
        let mut csr = arm_pass(42, 7, 3);
        assert_eq!(csr.read(Reg::RecordCount), 42);
        assert_eq!(csr.read(Reg::TreeCount), 7);
        assert_eq!(csr.read(Reg::PassIndex), 3);
        assert_eq!(csr.read(Reg::Control), CTRL_START);
        assert_eq!(csr.read(Reg::Status), STATUS_BUSY);
        assert_eq!(csr.reads(), 5);
    }

    #[test]
    fn status_transitions_do_not_count_as_mmio() {
        let mut csr = arm_pass(1, 1, 0);
        let writes = csr.writes();
        csr.set_status(STATUS_DONE);
        assert_eq!(csr.writes(), writes);
        assert_eq!(csr.read(Reg::Status), STATUS_DONE);
    }

    #[test]
    fn setup_time_is_writes_times_cost() {
        let t = setup_time(SimDuration::from_micros(2.0));
        assert_eq!(t, SimDuration::from_micros(14.0));
    }
}
