//! Split execution for trees deeper than the engine supports (§III-B's
//! proposed extension): the FPGA evaluates the first `max_depth` levels and
//! hands the frontier back to the CPU, which finishes the traversal.

use mlscore_backend::CpuSpec;
use mlscore_data::TabularFrame;
use mlscore_forest::{LeafValue, Node, Predictions, RandomForest, Task};
use mlscore_sim::{SimDuration, Stage, TimingBreakdown};

use crate::engine::InferenceEngine;

/// Statistics from a split-execution run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitReport {
    /// (record, tree) traversals finished on the FPGA (reached a leaf
    /// within the depth budget).
    pub finished_on_fpga: u64,
    /// (record, tree) traversals continued on the CPU.
    pub continued_on_cpu: u64,
    /// Total node visits performed by the CPU continuation.
    pub cpu_visits: u64,
}

impl SplitReport {
    /// Fraction of traversals the FPGA finished alone.
    pub fn fpga_fraction(&self) -> f64 {
        let total = self.finished_on_fpga + self.continued_on_cpu;
        if total == 0 {
            0.0
        } else {
            self.finished_on_fpga as f64 / total as f64
        }
    }
}

/// Walks `x` down a tree for at most `depth_budget` levels; returns either
/// the leaf value or the frontier node index where the budget ran out.
fn walk_to_depth(nodes: &[Node], x: &[f32], depth_budget: usize) -> Result<LeafValue, usize> {
    let mut idx = 0usize;
    for _ in 0..=depth_budget {
        match nodes[idx] {
            Node::Leaf(v) => return Ok(v),
            Node::Decision {
                feature,
                threshold,
                left,
                right,
            } => {
                idx = if x[feature as usize] <= threshold {
                    left as usize
                } else {
                    right as usize
                };
            }
        }
    }
    Err(idx)
}

/// Continues a traversal from `start` to a leaf, counting visits.
fn finish_on_cpu(nodes: &[Node], x: &[f32], start: usize) -> (LeafValue, u64) {
    let mut idx = start;
    let mut visits = 0u64;
    loop {
        visits += 1;
        match nodes[idx] {
            Node::Leaf(v) => return (v, visits),
            Node::Decision {
                feature,
                threshold,
                left,
                right,
            } => {
                idx = if x[feature as usize] <= threshold {
                    left as usize
                } else {
                    right as usize
                };
            }
        }
    }
}

/// Scores `frame` with split execution: the engine covers the first
/// `engine.config().max_depth` levels, the CPU finishes deeper paths.
/// Predictions are identical to pure CPU scoring; the report quantifies how
/// much work each side did.
///
/// # Panics
///
/// Panics if the frame width differs from the model's feature count.
pub fn split_score(
    engine: &InferenceEngine,
    forest: &RandomForest,
    frame: &TabularFrame,
) -> (Predictions, SplitReport) {
    assert_eq!(
        forest.n_features(),
        frame.n_features(),
        "frame width must match the model"
    );
    let budget = engine.config().max_depth;
    let mut report = SplitReport {
        finished_on_fpga: 0,
        continued_on_cpu: 0,
        cpu_visits: 0,
    };
    let mut leaf_for = |row: &[f32], tree: &mlscore_forest::DecisionTree| -> LeafValue {
        match walk_to_depth(tree.nodes(), row, budget) {
            Ok(v) => {
                report.finished_on_fpga += 1;
                v
            }
            Err(frontier) => {
                report.continued_on_cpu += 1;
                let (v, visits) = finish_on_cpu(tree.nodes(), row, frontier);
                report.cpu_visits += visits;
                v
            }
        }
    };
    let predictions = match forest.task() {
        Task::Classification { n_classes } => Predictions::Classes(
            frame
                .rows()
                .map(|row| {
                    let mut counts = vec![0u32; n_classes as usize];
                    for tree in forest.trees() {
                        let c = leaf_for(row, tree).as_class().expect("class leaf");
                        counts[c as usize] += 1;
                    }
                    RandomForest::majority(&counts)
                })
                .collect(),
        ),
        Task::Regression => Predictions::Values(
            frame
                .rows()
                .map(|row| {
                    let sum: f32 = forest
                        .trees()
                        .iter()
                        .map(|t| leaf_for(row, t).as_value().expect("value leaf"))
                        .sum();
                    sum / forest.n_trees() as f32
                })
                .collect(),
        ),
    };
    (predictions, report)
}

/// Estimates the time of a split-execution run: the normal engine pass plus
/// the CPU continuation for the expected below-budget visits, plus one extra
/// frontier transfer (the engine must return per-tree frontier indices, not
/// just final classes).
pub fn split_estimate(
    engine: &InferenceEngine,
    cpu: &CpuSpec,
    stats: &mlscore_forest::ModelStats,
    n_records: u64,
    report: &SplitReport,
) -> TimingBreakdown {
    let device = engine.device();
    let cfg = engine.config();
    let passes = stats.n_trees.div_ceil(cfg.pe_count) as u64;
    let mut b = TimingBreakdown::new();
    let fill = cfg.max_depth as u64 + (cfg.pe_count as u64).ilog2() as u64 + 2;
    let per_pass = device
        .clock
        .cycles(fill + n_records * cfg.memory.initiation_interval())
        .max(device.link.stream(n_records * stats.row_bytes() as u64));
    b.add(Stage::Scoring, per_pass * passes as f64);
    // Frontier transfer: one index per (record, tree) that continued.
    b.add(
        Stage::ResultTransfer,
        device
            .link
            .transfer(report.continued_on_cpu * 4 + n_records * 4),
    );
    b.add(Stage::CompletionSignal, device.interrupt * passes as f64);
    b.add(Stage::SoftwareOverhead, device.software_overhead);
    // CPU continuation, parallel across the host's threads.
    let visit = cpu.visit_cost(stats);
    let cpu_time = visit * report.cpu_visits as f64
        / mlscore_backend::cost::effective_parallelism(cpu.threads, n_records);
    b.add(Stage::Scoring, SimDuration::from_secs(cpu_time.as_secs()));
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_data::Dataset;
    use mlscore_forest::ForestConfig;

    #[test]
    fn split_matches_reference_for_deep_trees() {
        // Depth 14 exceeds the engine's 10 levels.
        let forest = RandomForest::synthetic_capped(
            &ForestConfig::classification(6, 4, 3).with_depth(14),
            500,
            7,
        );
        assert!(forest.max_depth() > 10);
        let data = Dataset::iris(120, 4).normalized();
        let engine = InferenceEngine::paper_default();
        let (preds, report) = split_score(&engine, &forest, data.frame());
        assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
        assert!(report.continued_on_cpu > 0, "deep paths must hit the CPU");
        assert!(report.cpu_visits >= report.continued_on_cpu);
    }

    #[test]
    fn shallow_trees_never_touch_cpu() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(4, 4, 2).with_depth(6), 3);
        let data = Dataset::iris(40, 5).normalized();
        let engine = InferenceEngine::paper_default();
        let (preds, report) = split_score(&engine, &forest, data.frame());
        assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
        assert_eq!(report.continued_on_cpu, 0);
        assert_eq!(report.fpga_fraction(), 1.0);
    }

    #[test]
    fn regression_split_works() {
        let forest =
            RandomForest::synthetic_capped(&ForestConfig::regression(3, 3).with_depth(13), 300, 2);
        let records: Vec<f32> = (0..60).map(|i| (i as f32 * 0.41) % 1.0).collect();
        let frame = TabularFrame::from_rows(records.clone(), 3).unwrap();
        let engine = InferenceEngine::paper_default();
        let (preds, _) = split_score(&engine, &forest, &frame);
        let reference = forest.predict_batch(&records);
        let (got, want) = (preds.as_values().unwrap(), reference.as_values().unwrap());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn split_estimate_includes_cpu_and_fpga_work() {
        let forest = RandomForest::synthetic_capped(
            &ForestConfig::classification(6, 4, 3).with_depth(14),
            500,
            7,
        );
        let data = Dataset::iris(100, 4).normalized();
        let engine = InferenceEngine::paper_default();
        let (_, report) = split_score(&engine, &forest, data.frame());
        let stats = mlscore_forest::ModelStats::of(&forest);
        let b = split_estimate(&engine, &CpuSpec::xeon_8171m(), &stats, 100, &report);
        assert!(b.get(Stage::Scoring) > SimDuration::ZERO);
        assert!(b.get(Stage::ResultTransfer) > SimDuration::ZERO);
    }

    #[test]
    fn empty_report_fraction_is_zero() {
        let r = SplitReport {
            finished_on_fpga: 0,
            continued_on_cpu: 0,
            cpu_visits: 0,
        };
        assert_eq!(r.fpga_fraction(), 0.0);
    }
}
