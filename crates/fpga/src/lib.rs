//! A functional, cycle-level model of the paper's FPGA random forest
//! inference engine (Fig. 5) on an Intel Stratix 10 GX 2800.
//!
//! The engine holds one tree per processing element (128 PEs), each tree
//! stored in per-PE BRAM in the Fig. 4b flat layout, processes one record
//! per cycle at 250 MHz (threads are "one cycle apart"), combines per-tree
//! outcomes in a majority-voting unit, buffers outputs in a result memory,
//! and talks to the host over PCIe 3.0 x16 with CSR-based setup and an
//! interrupt-based completion signal. Models with more than 128 trees take
//! multiple engine passes; trees deeper than the configured capacity (10
//! levels in the paper) are rejected — or handled by split execution
//! ([`split`]), the extension sketched in §III-B.
//!
//! # Example
//!
//! ```
//! use mlscore_backend::{ScoringBackend, ScoringRequest};
//! use mlscore_data::Dataset;
//! use mlscore_forest::{ForestConfig, RandomForest};
//! use mlscore_fpga::FpgaBackend;
//!
//! let forest = RandomForest::synthetic_full(
//!     &ForestConfig::classification(8, 4, 3).with_depth(6),
//!     2,
//! );
//! let data = Dataset::iris(100, 7).normalized();
//! let req = ScoringRequest::new(&forest, data.frame())?;
//! let preds = FpgaBackend::paper_default().score(&req)?;
//! assert_eq!(preds.len(), 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bram;
pub mod csr;
pub mod device;
pub mod engine;
pub mod error;
pub mod split;

pub use backend::FpgaBackend;
pub use bram::BramAllocator;
pub use device::FpgaDevice;
pub use engine::{
    CompletionMode, CycleReport, EngineConfig, EngineRun, InferenceEngine, LoadedModel,
    MemoryBackend,
};
pub use error::FpgaError;
pub use split::{split_score, SplitReport};
