//! FPGA engine errors.

use std::error::Error;
use std::fmt;

use mlscore_forest::ForestError;

/// Errors from loading or executing a model on the FPGA engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FpgaError {
    /// A tree exceeds the engine's depth capacity (10 levels in the paper);
    /// such models must stay on the CPU or use split execution.
    DepthExceeded {
        /// Observed tree depth.
        depth: usize,
        /// Engine capacity.
        max_depth: usize,
    },
    /// The model image plus buffers does not fit in on-chip BRAM.
    BramExceeded {
        /// Bytes required.
        needed: u64,
        /// Bytes available.
        available: u64,
    },
    /// A model/structure error bubbled up from the forest crate.
    Forest(ForestError),
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::DepthExceeded { depth, max_depth } => write!(
                f,
                "tree depth {depth} exceeds engine capacity of {max_depth} levels"
            ),
            FpgaError::BramExceeded { needed, available } => write!(
                f,
                "model needs {needed} bytes of BRAM but only {available} are available"
            ),
            FpgaError::Forest(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for FpgaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FpgaError::Forest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ForestError> for FpgaError {
    fn from(e: ForestError) -> Self {
        match e {
            ForestError::DepthExceeded { depth, max_depth } => {
                FpgaError::DepthExceeded { depth, max_depth }
            }
            other => FpgaError::Forest(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_error_converts_from_forest() {
        let e: FpgaError = ForestError::DepthExceeded {
            depth: 12,
            max_depth: 10,
        }
        .into();
        assert_eq!(
            e,
            FpgaError::DepthExceeded {
                depth: 12,
                max_depth: 10
            }
        );
        assert!(format!("{e}").contains("12"));
    }

    #[test]
    fn bram_error_displays_sizes() {
        let e = FpgaError::BramExceeded {
            needed: 100,
            available: 50,
        };
        let s = format!("{e}");
        assert!(s.contains("100") && s.contains("50"));
    }
}
