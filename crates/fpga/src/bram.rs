//! A simple BRAM capacity planner.
//!
//! The paper's engine stores everything on chip: per-PE tree memories, the
//! result memory, and input staging. "As the model gets more complex ... the
//! FPGA memory resources becomes the limiting factor." This allocator tracks
//! named regions against the device capacity so model loading fails exactly
//! when the paper says it would.

use serde::{Deserialize, Serialize};

use crate::error::FpgaError;

/// A named BRAM region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BramRegion {
    /// Human-readable purpose ("tree memory", "result memory", ...).
    pub label: String,
    /// Region size in bytes.
    pub bytes: u64,
}

/// Tracks BRAM allocations against a fixed capacity.
///
/// # Example
///
/// ```
/// use mlscore_fpga::BramAllocator;
///
/// let mut bram = BramAllocator::new(1024);
/// bram.alloc("tree memory", 512)?;
/// assert_eq!(bram.free_bytes(), 512);
/// assert!(bram.alloc("result memory", 1024).is_err());
/// # Ok::<(), mlscore_fpga::FpgaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BramAllocator {
    capacity: u64,
    regions: Vec<BramRegion>,
}

impl BramAllocator {
    /// Creates an allocator over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            regions: Vec::new(),
        }
    }

    /// Reserves a named region.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::BramExceeded`] when the region does not fit.
    pub fn alloc(&mut self, label: impl Into<String>, bytes: u64) -> Result<(), FpgaError> {
        let used = self.used_bytes();
        if used + bytes > self.capacity {
            return Err(FpgaError::BramExceeded {
                needed: used + bytes,
                available: self.capacity,
            });
        }
        self.regions.push(BramRegion {
            label: label.into(),
            bytes,
        });
        Ok(())
    }

    /// Total bytes currently reserved.
    pub fn used_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// Bytes still available.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used_bytes()
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The reserved regions, in allocation order.
    pub fn regions(&self) -> &[BramRegion] {
        &self.regions
    }

    /// Clears all reservations (reprogramming the design).
    pub fn reset(&mut self) {
        self.regions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_accounting() {
        let mut b = BramAllocator::new(100);
        b.alloc("a", 40).unwrap();
        b.alloc("b", 60).unwrap();
        assert_eq!(b.used_bytes(), 100);
        assert_eq!(b.free_bytes(), 0);
        assert_eq!(b.regions().len(), 2);
        assert_eq!(b.capacity(), 100);
    }

    #[test]
    fn over_allocation_reports_sizes() {
        let mut b = BramAllocator::new(100);
        b.alloc("a", 90).unwrap();
        let err = b.alloc("b", 20).unwrap_err();
        assert_eq!(
            err,
            FpgaError::BramExceeded {
                needed: 110,
                available: 100
            }
        );
        // Failed allocation leaves state unchanged.
        assert_eq!(b.used_bytes(), 90);
    }

    #[test]
    fn reset_frees_everything() {
        let mut b = BramAllocator::new(10);
        b.alloc("a", 10).unwrap();
        b.reset();
        assert_eq!(b.free_bytes(), 10);
        assert!(b.regions().is_empty());
    }
}
