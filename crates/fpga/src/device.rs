//! FPGA device description.

use serde::{Deserialize, Serialize};

use mlscore_offload::PcieLink;
use mlscore_sim::{ClockRate, SimDuration};

/// An FPGA card: fabric clock, on-chip BRAM capacity, and the host-side
/// costs of driving it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Marketing name.
    pub name: String,
    /// Fabric clock of the synthesized design (the paper's engine closes
    /// timing at 250 MHz).
    pub clock: ClockRate,
    /// On-chip BRAM capacity in bytes (~28.6 MB on the Stratix 10 GX 2800,
    /// which the paper contrasts with the P100's 4 MB L2).
    pub bram_bytes: u64,
    /// The PCIe link to the host.
    pub link: PcieLink,
    /// Cost of one MMIO write to a Control/Status Register; arming a pass
    /// takes [`crate::csr::SETUP_WRITES_PER_PASS`] of these. The paper
    /// notes CSR setup is cheaper than the interrupt.
    pub csr_write: SimDuration,
    /// Cost of the completion interrupt back to the host.
    pub interrupt: SimDuration,
    /// Fixed host software cost per scoring call (the FPGA API functions
    /// the paper's "software overhead" component measures).
    pub software_overhead: SimDuration,
    /// Extra host software cost per additional engine pass.
    pub per_pass_software: SimDuration,
}

impl FpgaDevice {
    /// The paper's card: Intel Stratix 10 GX 2800, 250 MHz design clock,
    /// ~28.6 MB BRAM, PCIe 3.0 x16.
    pub fn stratix10_gx2800() -> Self {
        Self {
            name: "Stratix 10 GX 2800".to_string(),
            clock: ClockRate::from_mhz(250.0),
            bram_bytes: 30_000_000,
            link: PcieLink::gen3_x16(),
            csr_write: SimDuration::from_micros(1.5),
            interrupt: SimDuration::from_micros(120.0),
            software_overhead: SimDuration::from_micros(1200.0),
            per_pass_software: SimDuration::from_micros(60.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratix_parameters_match_paper() {
        let d = FpgaDevice::stratix10_gx2800();
        assert_eq!(d.clock.cycle_time(), SimDuration::from_nanos(4.0));
        assert!((d.bram_bytes as f64 / (1 << 20) as f64 - 28.6).abs() < 0.1);
        assert!(
            d.csr_write < d.interrupt,
            "CSR setup is cheaper than interrupt"
        );
    }
}
