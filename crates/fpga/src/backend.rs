//! [`ScoringBackend`] implementation for the FPGA engine.

use std::sync::Arc;

use mlscore_backend::{BackendError, Lowered, ScoringBackend};
use mlscore_data::TabularFrame;
use mlscore_forest::{FlatTree, ModelStats, Predictions, RandomForest};
use mlscore_sim::{SimInstant, Stage, TimingBreakdown};
use mlscore_telemetry::{ExactSplit, Scope, Tracer};

use crate::device::FpgaDevice;
use crate::engine::{EngineConfig, InferenceEngine, LoadedModel};
use crate::error::FpgaError;

/// The "FPGA" backend of the paper's figures: the inference engine plus the
/// full offload path (model transfer, CSR setup, overlapped record
/// streaming, interrupt completion, result transfer, host software).
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaBackend {
    engine: InferenceEngine,
}

impl FpgaBackend {
    /// The paper's configuration (Stratix 10, 128 PEs, depth 10, BRAM).
    pub fn paper_default() -> Self {
        Self::new(InferenceEngine::paper_default())
    }

    /// Wraps an engine.
    pub fn new(engine: InferenceEngine) -> Self {
        Self { engine }
    }

    /// A backend with a custom device and engine configuration.
    pub fn with_config(device: FpgaDevice, config: EngineConfig) -> Self {
        Self::new(InferenceEngine::new(device, config))
    }

    /// The underlying engine.
    pub fn engine(&self) -> &InferenceEngine {
        &self.engine
    }

    fn to_backend_error(e: FpgaError) -> BackendError {
        match e {
            FpgaError::Forest(fe) => fe.into(),
            other => BackendError::unsupported("FPGA", other.to_string()),
        }
    }
}

impl ScoringBackend for FpgaBackend {
    fn name(&self) -> &str {
        "FPGA"
    }

    fn supports(&self, stats: &ModelStats) -> Result<(), BackendError> {
        let cfg = self.engine.config();
        if stats.max_depth > cfg.max_depth {
            return Err(BackendError::unsupported(
                "FPGA",
                format!(
                    "tree depth {} exceeds engine capacity of {} levels",
                    stats.max_depth, cfg.max_depth
                ),
            ));
        }
        Ok(())
    }

    /// Lowering depends on the engine's tree-memory shape: the flat-image
    /// depth capacity, the PE count (pass plan), and the memory backend
    /// (BRAM placement), so all three key the artifact cache.
    fn cache_config(&self) -> String {
        let cfg = self.engine.config();
        format!(
            "depth{}-pe{}-{:?}-rb{}",
            cfg.max_depth, cfg.pe_count, cfg.memory, cfg.result_buffer_records
        )
    }

    // Lowering is the engine's load step: flat-encode the forest at the
    // engine's depth capacity, plan the pass schedule, and place tree
    // memories in BRAM — exactly what the seed redid on every `score`.
    fn lower(&self, forest: &RandomForest) -> Result<Lowered, BackendError> {
        let model = self.engine.load(forest).map_err(Self::to_backend_error)?;
        Ok(Lowered::Custom(Arc::new(model)))
    }

    fn score_lowered(
        &self,
        forest: &RandomForest,
        lowered: &Lowered,
        frame: &TabularFrame,
    ) -> Result<Predictions, BackendError> {
        let _ = forest;
        let model = match lowered {
            Lowered::Custom(any) => any.downcast_ref::<LoadedModel>().ok_or_else(|| {
                BackendError::artifact("FPGA", "custom artifact is not a LoadedModel")
            })?,
            other => {
                return Err(BackendError::artifact(
                    "FPGA",
                    format!("expected a loaded engine model, got {other:?}"),
                ))
            }
        };
        let run = self.engine.execute(model, frame.as_slice());
        Ok(run.predictions)
    }

    fn estimate(&self, stats: &ModelStats, n_records: u64) -> TimingBreakdown {
        self.estimate_traced(stats, n_records, &Tracer::disabled(), SimInstant::ZERO)
    }

    fn estimate_traced(
        &self,
        stats: &ModelStats,
        n_records: u64,
        tracer: &Tracer,
        start: SimInstant,
    ) -> TimingBreakdown {
        let device = self.engine.device();
        let cfg = self.engine.config();
        let link = &device.link;
        let passes = stats.n_trees.div_ceil(cfg.pe_count) as u64;
        let mut b = TimingBreakdown::new();

        // 1) Input transfer: the model image into the tree memories, one
        //    DMA per pass. Record streaming overlaps scoring (§IV-B), so it
        //    is charged inside the scoring component instead.
        let tree_mem_bytes = (FlatTree::capacity_for_depth(cfg.max_depth) * 16) as u64;
        let trees_per_pass = (stats.n_trees as u64).div_ceil(passes);
        let input_total = link.transfer(trees_per_pass * tree_mem_bytes) * passes as f64;
        b.add(Stage::InputTransfer, input_total);

        // 2) FPGA setup: the CSR driver sequence that arms each pass.
        let setup_total = crate::csr::setup_time(device.csr_write) * passes as f64;
        b.add(Stage::AcceleratorSetup, setup_total);

        // 3) Scoring: pipeline cycles, rate-limited by the overlapped PCIe
        //    record stream when records arrive slower than 1/cycle.
        let ii = cfg.memory.initiation_interval();
        let fill = cfg.max_depth as u64 + (cfg.pe_count as u64).ilog2() as u64 + 2;
        let per_pass_compute = device.clock.cycles(fill + n_records * ii);
        let per_pass_stream = link.stream(n_records * stats.row_bytes() as u64);
        let scoring_total = per_pass_compute.max(per_pass_stream) * passes as f64;
        b.add(Stage::Scoring, scoring_total);

        // 4) Completion signalling, per pass: the paper's interrupt, or
        //    CSR polling (half the poll interval of expected detection
        //    delay plus one status-register read).
        let completion = match cfg.completion {
            crate::engine::CompletionMode::Interrupt => device.interrupt,
            crate::engine::CompletionMode::Polling { interval } => {
                interval / 2.0 + device.csr_write
            }
        };
        let completion_total = completion * passes as f64;
        b.add(Stage::CompletionSignal, completion_total);

        // 5) Result transfer: one DMA per result-memory flush.
        let flushes = (n_records as usize)
            .div_ceil(cfg.result_buffer_records)
            .max(1) as u64;
        let result_total = link.transfer(n_records * 4 / flushes) * flushes as f64;
        b.add(Stage::ResultTransfer, result_total);

        // 6) Host software overhead: fixed per call plus per extra pass.
        let inter_pass_sw = device.per_pass_software * (passes.saturating_sub(1)) as f64;
        b.add(
            Stage::SoftwareOverhead,
            device.software_overhead + inter_pass_sw,
        );

        if tracer.is_enabled() {
            self.record_spans(
                tracer,
                start,
                PassTotals {
                    passes: passes as usize,
                    input_total,
                    setup_total,
                    scoring_total,
                    completion_total,
                    result_total,
                    inter_pass_sw,
                    per_pass_compute,
                    per_pass_stream,
                    flushes,
                },
            );
        }
        b
    }
}

/// Stage totals handed from the cost model to the span recorder.
struct PassTotals {
    passes: usize,
    input_total: mlscore_sim::SimDuration,
    setup_total: mlscore_sim::SimDuration,
    scoring_total: mlscore_sim::SimDuration,
    completion_total: mlscore_sim::SimDuration,
    result_total: mlscore_sim::SimDuration,
    inter_pass_sw: mlscore_sim::SimDuration,
    per_pass_compute: mlscore_sim::SimDuration,
    per_pass_stream: mlscore_sim::SimDuration,
    flushes: u64,
}

/// Cap on per-pass detail lanes so very wide models stay readable.
const MAX_PASS_LANES: usize = 8;

impl FpgaBackend {
    /// Replays the offload timeline onto `tracer`.
    ///
    /// Per-pass `Offload` spans are cut with [`ExactSplit`] so folding them
    /// back in recording order recovers each stage total bit-exactly; the
    /// per-pass interleaving (input, setup, scoring, completion) still
    /// yields the same first-occurrence stage order as the direct
    /// `TimingBreakdown::add` sequence above. The two `SoftwareOverhead`
    /// spans are recorded last (keeping that stage last in the breakdown)
    /// but placed where the host actually spends the time: the driver call
    /// before pass 0, the inter-pass driver work in the gap after pass 0.
    fn record_spans(&self, tracer: &Tracer, start: SimInstant, t: PassTotals) {
        let device = self.engine.device();
        let name = <Self as ScoringBackend>::name(self);
        let inputs = ExactSplit::new(t.input_total, t.passes);
        let setups = ExactSplit::new(t.setup_total, t.passes);
        let scorings = ExactSplit::new(t.scoring_total, t.passes);
        let completions = ExactSplit::new(t.completion_total, t.passes);

        let mut cursor = start + device.software_overhead;
        let mut first_gap = cursor;
        let stream_bound = t.per_pass_stream > t.per_pass_compute;
        for (i, (((inp, set), sco), com)) in inputs
            .zip(setups)
            .zip(scorings)
            .zip(completions)
            .enumerate()
        {
            cursor = tracer
                .span(format!("model dma pass {i}"), cursor)
                .stage(Stage::InputTransfer)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta("pass", i.to_string())
                .finish_after(inp);
            cursor = tracer
                .span(format!("csr setup pass {i}"), cursor)
                .stage(Stage::AcceleratorSetup)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta("pass", i.to_string())
                .finish_after(set);
            if i < MAX_PASS_LANES {
                // Detail lanes: the engine pipeline and the overlapped PCIe
                // record stream run concurrently; scoring is the max.
                tracer
                    .span(format!("engine compute pass {i}"), cursor)
                    .track(name, format!("pass{i}"))
                    .finish_after(t.per_pass_compute);
                tracer
                    .span(format!("record stream pass {i}"), cursor)
                    .track(name, "pcie")
                    .finish_after(t.per_pass_stream);
            }
            cursor = tracer
                .span(format!("scoring pass {i}"), cursor)
                .stage(Stage::Scoring)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta("pass", i.to_string())
                .meta(
                    "bound",
                    if stream_bound {
                        "pcie-stream"
                    } else {
                        "compute"
                    },
                )
                .finish_after(sco);
            cursor = tracer
                .span(format!("completion pass {i}"), cursor)
                .stage(Stage::CompletionSignal)
                .scope(Scope::Offload)
                .track(name, "offload")
                .meta("pass", i.to_string())
                .finish_after(com);
            if i == 0 {
                first_gap = cursor;
            }
            if i + 1 < t.passes {
                cursor += device.per_pass_software;
            }
        }
        tracer
            .span("result dma", cursor)
            .stage(Stage::ResultTransfer)
            .scope(Scope::Offload)
            .track(name, "offload")
            .meta("flushes", t.flushes.to_string())
            .finish_after(t.result_total);
        // Host-side spans, recorded last so SoftwareOverhead stays the last
        // stage of the reconstructed breakdown.
        tracer
            .span("driver call", start)
            .stage(Stage::SoftwareOverhead)
            .scope(Scope::Offload)
            .track(name, "host")
            .meta("backend", name)
            .finish_after(device.software_overhead);
        if t.passes > 1 {
            tracer
                .span("inter-pass driver", first_gap)
                .stage(Stage::SoftwareOverhead)
                .scope(Scope::Offload)
                .track(name, "host")
                .meta("passes", t.passes.to_string())
                .finish_after(t.inter_pass_sw);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlscore_backend::ScoringRequest;
    use mlscore_data::Dataset;
    use mlscore_forest::ForestConfig;

    fn stats(n_trees: usize, depth: usize, n_features: usize) -> ModelStats {
        ModelStats::of(&RandomForest::synthetic_full(
            &ForestConfig::classification(n_trees, n_features, 2).with_depth(depth),
            1,
        ))
    }

    #[test]
    fn scoring_matches_reference() {
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(16, 28, 2).with_depth(7), 9);
        let data = Dataset::higgs(150, 3).normalized();
        let req = ScoringRequest::new(&forest, data.frame()).unwrap();
        let preds = FpgaBackend::paper_default().score(&req).unwrap();
        assert_eq!(preds, forest.predict_batch(data.frame().as_slice()));
    }

    #[test]
    fn prepared_scoring_reuses_loaded_model() {
        use mlscore_forest::ModelBundle;
        let forest =
            RandomForest::synthetic_full(&ForestConfig::classification(16, 28, 2).with_depth(7), 9);
        let data = Dataset::higgs(150, 3).normalized();
        let backend = FpgaBackend::paper_default();
        let model = backend.prepare(&ModelBundle::serialize(&forest)).unwrap();
        // The cache key carries the engine's compile-relevant knobs.
        assert!(
            model.key().config.contains("depth10-pe128"),
            "{:?}",
            model.key()
        );
        let warm = backend.score_prepared(&model, data.frame()).unwrap();
        let req = ScoringRequest::new(&forest, data.frame()).unwrap();
        assert_eq!(warm, backend.score(&req).unwrap());
        // A foreign artifact is rejected, naming the mismatch.
        let skl = mlscore_backend::SklearnCpu::with_threads(1);
        let foreign = skl.prepare(&ModelBundle::serialize(&forest)).unwrap();
        let err = backend.score_prepared(&foreign, data.frame()).unwrap_err();
        assert!(matches!(err, BackendError::Artifact { .. }));
    }

    #[test]
    fn supports_rejects_deep_trees() {
        let s = stats(1, 10, 4);
        assert!(FpgaBackend::paper_default().supports(&s).is_ok());
        let deep = stats(1, 11, 4);
        assert!(FpgaBackend::paper_default().supports(&deep).is_err());
    }

    #[test]
    fn one_record_is_overhead_dominated() {
        // Fig. 7a: for 1 record, input transfer and software overhead
        // dominate; scoring itself is nanoseconds.
        let b = FpgaBackend::paper_default().estimate(&stats(128, 10, 4), 1);
        let scoring = b.get(Stage::Scoring);
        assert!(scoring.as_micros() < 1.0, "scoring {scoring}");
        assert!(b.total().as_micros() > 500.0, "total {}", b.total());
        let (dominant, _) = b.dominant().unwrap();
        assert!(
            dominant == Stage::InputTransfer || dominant == Stage::SoftwareOverhead,
            "dominant stage {dominant}"
        );
    }

    #[test]
    fn million_records_are_scoring_dominated() {
        // Fig. 7b: at 1M records the scoring component dominates.
        let b = FpgaBackend::paper_default().estimate(&stats(128, 10, 4), 1_000_000);
        assert_eq!(b.dominant().unwrap().0, Stage::Scoring);
        // ~1M cycles at 250 MHz = 4 ms.
        assert!((3.9..6.0).contains(&b.get(Stage::Scoring).as_millis()));
    }

    #[test]
    fn wide_rows_become_pcie_stream_bound() {
        // HIGGS rows (112 B) need 28 GB/s at one record/cycle — more than
        // PCIe 3.0 x16 provides, so scoring is stream-bound and slower than
        // the 4 ms compute floor.
        let b = FpgaBackend::paper_default().estimate(&stats(128, 10, 28), 1_000_000);
        let scoring = b.get(Stage::Scoring).as_millis();
        assert!((8.0..12.0).contains(&scoring), "scoring {scoring} ms");
    }

    #[test]
    fn multi_pass_models_cost_proportionally_more() {
        let backend = FpgaBackend::paper_default();
        let one_pass = backend.estimate(&stats(128, 10, 4), 1_000_000);
        let two_pass = backend.estimate(&stats(256, 10, 4), 1_000_000);
        let ratio = two_pass
            .get(Stage::Scoring)
            .ratio(one_pass.get(Stage::Scoring));
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
        assert!(two_pass.get(Stage::CompletionSignal) > one_pass.get(Stage::CompletionSignal));
    }

    #[test]
    fn polling_completion_beats_interrupt_for_latency() {
        use crate::engine::CompletionMode;
        use mlscore_sim::SimDuration;
        let interrupt = FpgaBackend::paper_default();
        let polling = FpgaBackend::with_config(
            crate::device::FpgaDevice::stratix10_gx2800(),
            EngineConfig {
                completion: CompletionMode::Polling {
                    interval: SimDuration::from_micros(10.0),
                },
                ..EngineConfig::default()
            },
        );
        let s = stats(128, 10, 4);
        let i = interrupt.estimate(&s, 1).get(Stage::CompletionSignal);
        let p = polling.estimate(&s, 1).get(Stage::CompletionSignal);
        // Interrupt: 120 µs. Polling at 10 µs: ~6.5 µs expected delay.
        assert!(p.as_micros() < 10.0, "polling completion {p}");
        assert!(i.ratio(p) > 10.0, "interrupt {i} vs polling {p}");
        // Everything else is unchanged.
        assert_eq!(
            interrupt.estimate(&s, 1).get(Stage::Scoring),
            polling.estimate(&s, 1).get(Stage::Scoring)
        );
    }

    #[test]
    fn traced_estimate_reconstructs_exactly() {
        let backend = FpgaBackend::paper_default();
        // Single-pass tiny batch, multi-pass stream-bound HIGGS-size batch.
        for (s, n) in [
            (stats(128, 10, 4), 1u64),
            (stats(256, 10, 28), 1_000_000),
            (stats(300, 9, 12), 77_777),
        ] {
            let tracer = Tracer::new();
            let traced = backend.estimate_traced(&s, n, &tracer, SimInstant::ZERO);
            assert_eq!(traced, backend.estimate(&s, n));
            let trace = tracer.take();
            assert_eq!(trace.breakdown(Scope::Offload), traced);
        }
    }

    #[test]
    fn traced_two_pass_span_inventory() {
        let backend = FpgaBackend::paper_default();
        let tracer = Tracer::new();
        backend.estimate_traced(&stats(256, 10, 4), 1000, &tracer, SimInstant::ZERO);
        let trace = tracer.take();
        // 4 offload spans per pass x 2 passes + result dma + driver call +
        // inter-pass driver = 11 offload; 2 detail lanes per pass = 4.
        assert_eq!(trace.len(), 15);
        let details = trace
            .events()
            .iter()
            .filter(|e| e.scope == Scope::Detail)
            .count();
        assert_eq!(details, 4);
        // The driver call sits at the very start of the timeline.
        let driver = trace
            .events()
            .iter()
            .find(|e| e.name == "driver call")
            .unwrap();
        assert_eq!(driver.start, SimInstant::ZERO);
        // Compute and stream detail spans for a pass start together.
        let compute = trace
            .events()
            .iter()
            .find(|e| e.name == "engine compute pass 0")
            .unwrap();
        let stream = trace
            .events()
            .iter()
            .find(|e| e.name == "record stream pass 0")
            .unwrap();
        assert_eq!(compute.start, stream.start);
    }

    #[test]
    fn overheads_independent_of_model_complexity() {
        // Fig. 7a: FPGA setup, completion signal, and software overhead are
        // the same for 1 tree and 128 trees (both are single-pass).
        let backend = FpgaBackend::paper_default();
        let small = backend.estimate(&stats(1, 10, 4), 1);
        let big = backend.estimate(&stats(128, 10, 4), 1);
        assert_eq!(
            small.get(Stage::AcceleratorSetup),
            big.get(Stage::AcceleratorSetup)
        );
        assert_eq!(
            small.get(Stage::CompletionSignal),
            big.get(Stage::CompletionSignal)
        );
        assert_eq!(
            small.get(Stage::SoftwareOverhead),
            big.get(Stage::SoftwareOverhead)
        );
        // But input transfer grows with the model.
        assert!(big.get(Stage::InputTransfer) > small.get(Stage::InputTransfer));
    }
}
