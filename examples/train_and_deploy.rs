//! Train a random forest on synthetic HIGGS data, store it as a binary
//! model bundle (as the DBMS would), then run the full T-SQL-style query
//! pipeline over every hardware backend and compare end-to-end breakdowns.
//!
//! ```text
//! cargo run --release --example train_and_deploy
//! ```

use mlscore::prelude::*;
use mlscore_backend::{OnnxCpu, SklearnCpu};
use mlscore_data::train_test_split;
use mlscore_forest::{metrics::accuracy, ForestBuilder, ModelBundle, TrainOptions};
use mlscore_fpga::FpgaBackend;
use mlscore_gpu::{HummingbirdGpu, RapidsFil};
use mlscore_pipeline::QueryPipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Training: a real CART forest on synthetic HIGGS (binary task).
    let data = Dataset::higgs(4_000, 11);
    let (train, test) = train_test_split(&data, 0.8, 3)?;
    let forest = ForestBuilder::new(
        32,
        TrainOptions {
            max_depth: 10,
            seed: 5,
            ..Default::default()
        },
    )
    .train_classifier(
        train.frame().as_slice(),
        train.frame().n_features(),
        train.labels(),
        train.n_classes(),
    )?;
    let preds = forest.predict_batch(test.frame().as_slice());
    println!(
        "trained {} trees (max depth {}, {} nodes); test accuracy {:.3}",
        forest.n_trees(),
        forest.max_depth(),
        forest.n_nodes(),
        accuracy(preds.as_classes().unwrap(), test.labels()),
    );

    // 2. Storage: serialize to the binary bundle a model table would hold.
    let bundle = ModelBundle::serialize(&forest);
    println!("model bundle: {} bytes\n", bundle.len());

    // 3. Deployment: run the query pipeline on every backend.
    let backends: Vec<Box<dyn ScoringBackend>> = vec![
        Box::new(SklearnCpu::paper_default()),
        Box::new(OnnxCpu::single_thread()),
        Box::new(HummingbirdGpu::p100()),
        Box::new(RapidsFil::p100()),
        Box::new(FpgaBackend::paper_default()),
    ];
    for backend in backends {
        let name = backend.name().to_string();
        let pipeline = QueryPipeline::new(backend);
        let run = pipeline.execute(&bundle, test.frame())?;
        println!(
            "{name:<18} end-to-end {:>12} (scoring {:>12})",
            run.total().to_string(),
            run.scoring_breakdown.total().to_string(),
        );
    }

    // 4. The Fig. 11 story at scale: estimate the same query at 1M records.
    println!("\nend-to-end breakdown at 1M records, FPGA-offloaded scoring:");
    let stats = ModelStats::of(&forest);
    let pipeline = QueryPipeline::new(FpgaBackend::paper_default());
    println!(
        "{}",
        pipeline.estimate(&stats, bundle.len() as u64, 1_000_000)
    );
    Ok(())
}
