//! Offload advisor: given a model shape and batch size, report what every
//! backend would cost, what the scheduling policies pick, and the Fig. 6
//! offload decomposition plus LogCA break-even analysis for the FPGA.
//!
//! ```text
//! cargo run --release --example offload_advisor -- [trees] [depth] [features] [records]
//! cargo run --release --example offload_advisor -- 128 10 28 1000000
//! ```

use mlscore::prelude::*;
use mlscore_offload::{LogCa, OffloadSummary};
use mlscore_sched::{paper_backends, AffineFitPolicy, HeuristicPolicy, OraclePolicy, Policy};

fn arg(n: usize, default: u64) -> u64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_trees = arg(1, 128) as usize;
    let depth = (arg(2, 10) as usize).min(24);
    let n_features = arg(3, 28) as usize;
    let n_records = arg(4, 1_000_000);

    let forest = RandomForest::synthetic_full(
        &ForestConfig::classification(n_trees, n_features, 2).with_depth(depth),
        1,
    );
    let stats = ModelStats::of(&forest);
    println!(
        "model: {n_trees} trees x {depth} levels, {n_features} features, {} nodes; batch {n_records} records\n",
        stats.total_nodes
    );

    let backends = paper_backends();
    println!("{:<18} {:>14}", "backend", "modelled time");
    let mut cpu_best: Option<(String, SimDuration)> = None;
    let mut fpga_breakdown: Option<TimingBreakdown> = None;
    for b in &backends {
        match b.supports(&stats) {
            Ok(()) => {
                let breakdown = b.estimate(&stats, n_records);
                println!("{:<18} {:>14}", b.name(), breakdown.total().to_string());
                if b.name().starts_with("CPU")
                    && cpu_best
                        .as_ref()
                        .is_none_or(|(_, t)| breakdown.total() < *t)
                {
                    cpu_best = Some((b.name().to_string(), breakdown.total()));
                }
                if b.name() == "FPGA" {
                    fpga_breakdown = Some(breakdown);
                }
            }
            Err(e) => println!("{:<18} {:>14}  ({e})", b.name(), "unsupported"),
        }
    }

    println!("\npolicy decisions:");
    let policies: [&dyn Policy; 3] = [
        &OraclePolicy,
        &HeuristicPolicy::default(),
        &AffineFitPolicy::default(),
    ];
    for p in policies {
        match p.choose(&stats, n_records, &backends) {
            Some(c) => println!(
                "  {:<16} -> {:<16} (predicted {})",
                p.name(),
                c.name,
                c.predicted
            ),
            None => println!("  {:<16} -> no supported backend", p.name()),
        }
    }

    if let (Some((cpu_name, cpu_time)), Some(fpga)) = (cpu_best, fpga_breakdown) {
        let summary = OffloadSummary::new(cpu_time, &fpga);
        println!("\nFig. 6 decomposition for the FPGA offload (host = {cpu_name}):");
        println!(
            "  O (overhead) {}   L (transfer) {}   C_A (compute) {}",
            summary.offload.overhead, summary.offload.transfer, summary.offload.compute
        );
        println!(
            "  kernel-only speedup {:.1}x, end-to-end speedup {:.2}x -> {}",
            summary.kernel_speedup(),
            summary.speedup(),
            if summary.beneficial() {
                "offload is worth it"
            } else {
                "offloading would LOSE"
            }
        );

        // LogCA view: per-record granularity analysis.
        let per_record_host = cpu_time / n_records as f64;
        let overhead = summary.offload.overhead + summary.offload.transfer;
        let per_record_accel = summary.offload.compute / n_records as f64;
        if !per_record_accel.is_zero() {
            let model = LogCa::new(
                overhead,
                SimDuration::ZERO,
                per_record_host,
                per_record_host.ratio(per_record_accel),
            );
            match model.break_even() {
                Some(g1) => println!(
                    "  LogCA: break-even at ~{:.0} records, peak speedup {:.1}x",
                    g1,
                    model.peak_speedup()
                ),
                None => println!("  LogCA: this offload never breaks even"),
            }
        }
    }
}
