//! Prints the Fig. 1 / Fig. 8 shmoo: the best-performing backend for every
//! (tree count x record count) cell of both datasets, with speedups over
//! the best CPU engine.
//!
//! ```text
//! cargo run --release --example accelerator_shmoo
//! ```

use mlscore_core::report::render_shmoo;
use mlscore_core::shmoo::ShmooTable;
use mlscore_data::DatasetSpec;

fn main() {
    for dataset in DatasetSpec::all() {
        let table = ShmooTable::paper_grid(dataset);
        println!("{}", render_shmoo(&table));
        // Fig. 1's simplified family view.
        println!("family map (rows = records, cols = trees):");
        for (i, &n) in table.record_counts.iter().enumerate() {
            let row: Vec<&str> = table.cells[i].iter().map(|c| c.family()).collect();
            println!("  {:>9}: {}", n, row.join("  "));
        }
        println!();
    }
}
