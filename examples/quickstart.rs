//! Quickstart: build a model, score a batch on the CPU and on the FPGA
//! model, and compare the modelled scoring times.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mlscore::prelude::*;
use mlscore_backend::SklearnCpu;
use mlscore_fpga::FpgaBackend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's heavyweight configuration: 128 trees, 10 levels, on
    // HIGGS-shaped data (28 features, binary labels).
    let forest =
        RandomForest::synthetic_full(&ForestConfig::classification(128, 28, 2).with_depth(10), 42);
    let data = Dataset::higgs(10_000, 7).normalized();

    let cpu = SklearnCpu::paper_default();
    let fpga = FpgaBackend::paper_default();

    // Functional scoring: both backends compute real predictions, and they
    // agree exactly.
    let request = ScoringRequest::new(&forest, data.frame())?;
    let cpu_preds = cpu.score(&request)?;
    let fpga_preds = fpga.score(&request)?;
    assert_eq!(cpu_preds, fpga_preds);
    println!(
        "scored {} records; first ten classes: {:?}",
        cpu_preds.len(),
        &cpu_preds.as_classes().unwrap()[..10]
    );

    // Modelled timing: where does the time go on each backend?
    let stats = ModelStats::of(&forest);
    for n_records in [100u64, 10_000, 1_000_000] {
        let cpu_t = cpu.estimate(&stats, n_records).total();
        let fpga_b = fpga.estimate(&stats, n_records);
        let fpga_t = fpga_b.total();
        let verdict = if fpga_t < cpu_t {
            "offload"
        } else {
            "stay on CPU"
        };
        println!("{n_records:>9} records: CPU {cpu_t:>12}  FPGA {fpga_t:>12}  -> {verdict}");
    }

    println!("\nFPGA breakdown at 1M records (the Fig. 7b decomposition):");
    println!("{}", fpga.estimate(&stats, 1_000_000));
    Ok(())
}
