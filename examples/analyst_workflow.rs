//! An end-to-end analyst workflow: export data to CSV, re-import it, train
//! with feature importances, let the adaptive scheduler learn where to run
//! the scoring, and estimate how much host capacity offloading frees up
//! under concurrent queries.
//!
//! ```text
//! cargo run --release --example analyst_workflow
//! ```

use mlscore::prelude::*;
use mlscore_backend::SklearnCpu;
use mlscore_data::csv;
use mlscore_forest::{ForestBuilder, ModelBundle, TrainOptions};
use mlscore_fpga::FpgaBackend;
use mlscore_pipeline::{consolidate, HostResources, IntegrationMode, PipelineParams};
use mlscore_sched::{paper_backends, AdaptiveScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Round-trip the dataset through CSV, as an analyst would stage it.
    let original = Dataset::higgs(3_000, 21);
    let mut staged = Vec::new();
    csv::write_dataset(&original, &mut staged)?;
    let data = csv::read_dataset(staged.as_slice(), true, "HIGGS")?;
    println!(
        "staged {} rows x {} features through CSV ({} bytes)",
        data.frame().n_rows(),
        data.frame().n_features(),
        staged.len()
    );

    // 2. Train with importances.
    let trained = ForestBuilder::new(
        24,
        TrainOptions {
            max_depth: 10,
            seed: 9,
            ..Default::default()
        },
    )
    .train_classifier_detailed(
        data.frame().as_slice(),
        data.frame().n_features(),
        data.labels(),
        data.n_classes(),
    )?;
    let top: Vec<usize> = trained.ranked_features().into_iter().take(5).collect();
    println!("top-5 features by importance: {top:?}");

    // 3. Let the adaptive scheduler learn the best backend from observed
    //    runs (observations come from the calibrated cost models).
    let stats = ModelStats::of(&trained.forest);
    let backends = paper_backends();
    let mut scheduler = AdaptiveScheduler::new(0.4);
    for round in 1.. {
        let choice = scheduler
            .choose(&stats, 1_000_000, &backends)
            .expect("some backend supports the model");
        let observed = backends[choice.index].estimate(&stats, 1_000_000).total();
        scheduler.observe(&stats, choice.index, 1_000_000, observed);
        println!("  round {round}: ran on {} ({observed})", choice.name);
        if round >= 8 {
            break;
        }
    }
    let settled = scheduler.choose(&stats, 1_000_000, &backends).unwrap();
    println!("scheduler settled on {}", settled.name);

    // 4. Consolidation: 16 concurrent 1M-record queries — what does the
    //    accelerator free up, under loose and tight DBMS integration?
    let bundle = ModelBundle::serialize(&trained.forest);
    for (label, params) in [
        ("external-process", PipelineParams::default()),
        ("in-engine", IntegrationMode::InEngine.params()),
    ] {
        let report = consolidate(
            &HostResources::default(),
            &params,
            &SklearnCpu::paper_default(),
            &FpgaBackend::paper_default(),
            &stats,
            bundle.len() as u64,
            1_000_000,
            16,
        );
        println!(
            "16 queries, {label:>16}: host-only {} -> offloaded {} ({:.1}x, {:.0} core-seconds freed)",
            report.host_only,
            report.offloaded,
            report.speedup(),
            report.core_seconds_freed
        );
    }
    Ok(())
}
