//! Trace one simulated scoring query end to end: record spans across the
//! pipeline and the FPGA offload path, reconstruct the Fig. 11 breakdown
//! from the spans, and export Perfetto JSON plus folded flamegraph stacks.
//!
//! ```text
//! cargo run --example trace_query
//! ```

use mlscore::prelude::*;
use mlscore_forest::ModelBundle;
use mlscore_fpga::FpgaBackend;
use mlscore_pipeline::QueryPipeline;
use mlscore_telemetry::{folded, perfetto};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's heavyweight point: HIGGS, 128 trees, 10 levels, 1M rows.
    let forest =
        RandomForest::synthetic_full(&ForestConfig::classification(128, 28, 2).with_depth(10), 42);
    let stats = ModelStats::of(&forest);
    let bundle = ModelBundle::serialize(&forest);

    let pipeline = QueryPipeline::new(FpgaBackend::paper_default());
    let tracer = Tracer::new();
    let breakdown = pipeline.estimate_traced(
        &stats,
        bundle.len() as u64,
        1_000_000,
        &tracer,
        SimInstant::ZERO,
    );
    let trace = tracer.take();

    println!("recorded {} spans:", trace.len());
    for ev in trace.events() {
        println!(
            "  [{:<7}] {:<24} {:>16} +{:<14} on {}/{}",
            ev.scope.to_string(),
            ev.name,
            ev.start.to_string(),
            ev.dur.to_string(),
            ev.track.process,
            ev.track.lane,
        );
    }

    // The span fold reproduces the directly computed breakdown exactly —
    // same stages, same order, same f64 sums.
    assert_eq!(trace.breakdown(Scope::Query), breakdown);
    println!("\nFig. 11 breakdown, reconstructed from Query spans:");
    println!("{breakdown}");

    let path = std::env::temp_dir().join("mlscore_trace.json");
    std::fs::write(&path, perfetto::to_json(&trace))?;
    println!(
        "Perfetto trace written to {} — load it at ui.perfetto.dev",
        path.display()
    );

    println!("\nFolded stacks (pipe into a flamegraph renderer):");
    print!("{}", folded::to_folded(&trace));
    Ok(())
}
