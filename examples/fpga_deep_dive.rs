//! FPGA engine deep dive: BRAM planning, multi-pass execution for >128
//! trees, cycle accounting, and split execution for trees deeper than the
//! engine's 10-level capacity (the paper's §III-B extension).
//!
//! ```text
//! cargo run --release --example fpga_deep_dive
//! ```

use mlscore::prelude::*;
use mlscore_backend::CpuSpec;
use mlscore_fpga::{split_score, InferenceEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = InferenceEngine::paper_default();
    let data = Dataset::iris(5_000, 3).normalized();

    // 1. The paper's flagship model: 128 trees x depth 10 fits in one pass.
    let model_128 =
        RandomForest::synthetic_full(&ForestConfig::classification(128, 4, 3).with_depth(10), 9);
    let loaded = engine.load(&model_128)?;
    println!(
        "128-tree model: {} pass(es), model image {} KiB",
        loaded.passes(),
        loaded.model_bytes() / 1024
    );
    println!("BRAM plan:");
    for region in loaded.bram().regions() {
        println!("  {:<16} {:>10} bytes", region.label, region.bytes);
    }
    println!(
        "  used {} / {} bytes ({:.1}%)",
        loaded.bram().used_bytes(),
        loaded.bram().capacity(),
        100.0 * loaded.bram().used_bytes() as f64 / loaded.bram().capacity() as f64
    );

    let run = engine.execute(&loaded, data.frame().as_slice());
    println!(
        "scored {} records in {} cycles ({} fill + {} streaming) -> {}\n",
        run.predictions.len(),
        run.report.total_cycles,
        run.report.fill_cycles,
        run.report.streaming_cycles,
        engine.device().clock.cycles(run.report.total_cycles),
    );

    // 2. A 300-tree model needs three passes, as §III-B describes.
    let model_300 =
        RandomForest::synthetic_full(&ForestConfig::classification(300, 4, 3).with_depth(8), 4);
    let loaded = engine.load(&model_300)?;
    let run = engine.execute(&loaded, data.frame().as_slice());
    println!(
        "300-tree model: {} passes, {} total cycles",
        run.report.passes, run.report.total_cycles
    );
    assert_eq!(
        run.predictions,
        model_300.predict_batch(data.frame().as_slice()),
        "multi-pass voting must match reference"
    );

    // 3. Depth 14 exceeds the engine: plain loading fails...
    let deep = RandomForest::synthetic_capped(
        &ForestConfig::classification(8, 4, 3).with_depth(14),
        400,
        2,
    );
    println!("\ndepth-14 model: load -> {:?}", engine.load(&deep).err());

    // ...but split execution finishes the deep paths on the CPU.
    let (preds, report) = split_score(&engine, &deep, data.frame());
    assert_eq!(preds, deep.predict_batch(data.frame().as_slice()));
    println!(
        "split execution: {:.1}% of traversals finished on the FPGA, {} CPU visits",
        report.fpga_fraction() * 100.0,
        report.cpu_visits
    );
    let est = mlscore_fpga::split::split_estimate(
        &engine,
        &CpuSpec::xeon_8171m(),
        &ModelStats::of(&deep),
        data.frame().n_rows() as u64,
        &report,
    );
    println!("split-execution time model:\n{est}");
    Ok(())
}
