//! Query-mix simulation: replay a heavy-tailed trace of mixed scoring
//! queries through every scheduling policy and compare makespan, latency
//! percentiles, and backend placement — the capacity-planning view of
//! Fig. 1's "the decision must be dynamic" argument.
//!
//! ```text
//! cargo run --release --example query_mix_simulator -- [n_queries] [seed]
//! ```

use std::collections::BTreeMap;

use mlscore::backend::ScoringBackend;
use mlscore::sim::SimDuration;
use mlscore_sched::{
    paper_backends, replay_adaptive, AdaptiveScheduler, AffineFitPolicy, HeuristicPolicy,
    OraclePolicy, Policy, QueryTrace, TraceOutcome,
};

/// Serial fixed-policy replay: each trace query is charged the modelled
/// time of the backend the policy picks. (`repro serve` layers queueing,
/// coalescing, and device contention on top of this simple loop.)
fn replay_policy(
    policy: &dyn Policy,
    trace: &QueryTrace,
    backends: &[Box<dyn ScoringBackend>],
) -> TraceOutcome {
    let mut total = SimDuration::ZERO;
    let mut latencies = Vec::with_capacity(trace.len());
    let mut picks: BTreeMap<String, usize> = BTreeMap::new();
    for q in trace.queries() {
        let choice = policy
            .choose(&q.stats, q.n_records, backends)
            .expect("every trace query has a supporting backend");
        let latency = backends[choice.index]
            .estimate(&q.stats, q.n_records)
            .total();
        total += latency;
        latencies.push(latency);
        *picks.entry(choice.name).or_default() += 1;
    }
    TraceOutcome {
        policy: policy.name().to_string(),
        total,
        latencies,
        picks,
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    let backends = paper_backends();
    let trace = QueryTrace::synthetic(n, seed);
    println!("replaying {n} mixed queries (seed {seed})\n");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "policy", "total", "p50", "p95", "p99"
    );

    let policies: [&dyn Policy; 3] = [
        &OraclePolicy,
        &HeuristicPolicy::default(),
        &AffineFitPolicy::default(),
    ];
    let mut outcomes = Vec::new();
    for p in policies {
        outcomes.push(replay_policy(p, &trace, &backends));
    }
    let mut adaptive = AdaptiveScheduler::new(0.4);
    // Warm the learner on one pass, then report the learned behaviour.
    replay_adaptive(&mut adaptive, &trace, &backends);
    outcomes.push(replay_adaptive(&mut adaptive, &trace, &backends));

    for o in &outcomes {
        println!(
            "{:<18} {:>12} {:>12} {:>12} {:>12}",
            o.policy,
            o.total.to_string(),
            o.percentile(50.0).to_string(),
            o.percentile(95.0).to_string(),
            o.percentile(99.0).to_string(),
        );
    }

    println!("\nbackend placement per policy:");
    for o in &outcomes {
        let mix: Vec<String> = o
            .picks
            .iter()
            .map(|(name, count)| format!("{name}:{count}"))
            .collect();
        println!("  {:<18} {}", o.policy, mix.join("  "));
    }
}
