#!/usr/bin/env bash
# Tier-1 gate plus lint/format checks. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== workspace lints (repro analyze --check-baseline) =="
# The determinism & hot-path lint pass (DESIGN.md section 10): fails on any
# new finding AND on stale baseline entries, so the committed baseline can
# only shrink.
cargo run --release -q -p mlscore-bench --bin repro -- \
    analyze --check-baseline

echo "== bench smoke (repro bench --quick, once per kernel) =="
# Quick measured sweep into a scratch file, once per vector-tier filter:
# exercises the wall-clock harness end to end — including the warm+cold
# artifact-cache pair and the SIMD/QuickScorer kernels — and
# self-validates the JSON it writes (schema_version >= 3, chosen kernel
# per cell, cache block with hits >= 1 and cold >= warm).
for k in auto blocked simd quickscorer; do
    cargo run --release -q -p mlscore-bench --bin repro -- \
        bench --quick --kernel "$k" \
        --out "target/BENCH_cpu_scoring.quick.$k.json" \
        | tee "target/bench_smoke.$k.log"
    cargo run --release -q -p mlscore-bench --bin repro -- \
        bench --check "target/BENCH_cpu_scoring.quick.$k.json"
    # Every cell must print the cost model's pick.
    grep -q 'kernel pick: ' "target/bench_smoke.$k.log"
done
# Forced runs must say so on the pick line.
grep -q '\[forced: simd\]' target/bench_smoke.simd.log
# The quick runs above also exercise the fused-vs-staged shmoo: --check
# has already enforced (schema v4) that every fused cell is bit-exact and
# that the per-chunk handoff eliminates >= 80% of the staged marshal +
# pre-processing tax. Assert the block actually made it into the output.
grep -q '"fused"' target/BENCH_cpu_scoring.quick.auto.json
grep -q '"eliminated_frac"' target/BENCH_cpu_scoring.quick.auto.json
# The committed trajectory must stay parseable, non-empty, and carry a
# valid cache-stats block, per-cell kernel picks, and the fused shmoo.
cargo run --release -q -p mlscore-bench --bin repro -- \
    bench --check BENCH_cpu_scoring.json
grep -q '"chosen_kernel"' BENCH_cpu_scoring.json
grep -q '"fused"' BENCH_cpu_scoring.json
# Regression diff self-check: a report diffed against itself is clean, so
# the gate only ever fires on real throughput loss. The quick auto run
# diffed against itself additionally covers the per-metric v4 cells.
cargo run --release -q -p mlscore-bench --bin repro -- \
    bench --diff BENCH_cpu_scoring.json BENCH_cpu_scoring.json
cargo run --release -q -p mlscore-bench --bin repro -- \
    bench --diff target/BENCH_cpu_scoring.quick.auto.json \
                 target/BENCH_cpu_scoring.quick.auto.json

echo "== serve smoke (repro serve --quick) =="
# Quick load sweep through the discrete-event serving engine into a scratch
# file. The validator enforces the effects the subsystem exists to model:
# at least one coalesced batch, at least one shed request under overload,
# and FPGA throughput with coalescing on no worse than off at the same
# offered load.
cargo run --release -q -p mlscore-bench --bin repro -- \
    serve --quick --out target/BENCH_serving.quick.json \
    --trace-out target/trace_serve.json
cargo run --release -q -p mlscore-bench --bin repro -- \
    serve --check target/BENCH_serving.quick.json
# The committed full-mode report must stay valid too.
cargo run --release -q -p mlscore-bench --bin repro -- \
    serve --check BENCH_serving.json
# The serving timeline must carry the per-device contention lane and the
# per-request queue-wait spans.
grep -q '"device FPGA"' target/trace_serve.json
grep -q '"queue wait"' target/trace_serve.json
# ...and the causal flow events linking each coalesced request's queue-wait
# span (flow start, ph:"s") to the device pass that scored it (flow finish,
# ph:"f" with enclosing-slice binding).
grep -q '"ph":"s","cat":"flow","name":"request"' target/trace_serve.json
grep -q '"ph":"f","bp":"e","cat":"flow","name":"request"' target/trace_serve.json
grep -q '"device pass"' target/trace_serve.json

echo "== report smoke (repro report --quick, twice) =="
# The run report is a pure function of (seed, options): rendering it twice
# must produce byte-identical JSON, and the document must self-validate
# (>= 2 windows, per-class attainment, >= 1 slowest-request breakdown).
cargo run --release -q -p mlscore-bench --bin repro -- \
    report --quick --out target/run_report.a.json >/dev/null
cargo run --release -q -p mlscore-bench --bin repro -- \
    report --quick --out target/run_report.b.json >/dev/null
cmp target/run_report.a.json target/run_report.b.json
grep -q '"slo_alert"\|"alerts"' target/run_report.a.json

echo "== trace smoke (repro trace --cold / --warm / --fused) =="
# Both halves of the two-phase split must render a timeline.
cargo run --release -q -p mlscore-bench --bin repro -- \
    trace --cold --out target/trace_cold.json >/dev/null
cargo run --release -q -p mlscore-bench --bin repro -- \
    trace --warm --out target/trace_warm.json >/dev/null
grep -q '"model deserialization"' target/trace_cold.json
grep -q '"artifact cache hit"' target/trace_warm.json
if grep -q '"model deserialization"' target/trace_warm.json; then
    echo "ci: warm trace unexpectedly contains a cold-only span" >&2
    exit 1
fi
# The fused timeline must collapse the marshal stages into a per-chunk
# handoff and carry one "fused chunk" detail span per pull.
cargo run --release -q -p mlscore-bench --bin repro -- \
    trace --fused --warm --out target/trace_fused.json higgs 128 100k sklearn \
    >/dev/null
grep -q '"fused chunk"' target/trace_fused.json
grep -q '"chunk handoff"' target/trace_fused.json
if grep -q '"data preprocessing"' target/trace_fused.json; then
    echo "ci: fused trace unexpectedly charges a data-preprocessing span" >&2
    exit 1
fi

echo "ci: all checks passed"
