#!/usr/bin/env bash
# Tier-1 gate plus lint/format checks. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== bench smoke (repro bench --quick) =="
# Quick measured sweep into a scratch file: exercises the wall-clock
# harness end to end and self-validates the JSON it writes.
cargo run --release -q -p mlscore-bench --bin repro -- \
    bench --quick --out target/BENCH_cpu_scoring.quick.json
cargo run --release -q -p mlscore-bench --bin repro -- \
    bench --check target/BENCH_cpu_scoring.quick.json
# The committed trajectory must stay parseable and non-empty.
cargo run --release -q -p mlscore-bench --bin repro -- \
    bench --check BENCH_cpu_scoring.json

echo "ci: all checks passed"
