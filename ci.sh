#!/usr/bin/env bash
# Tier-1 gate plus lint/format checks. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "ci: all checks passed"
