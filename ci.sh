#!/usr/bin/env bash
# Tier-1 gate plus lint/format checks. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q --workspace

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== bench smoke (repro bench --quick) =="
# Quick measured sweep into a scratch file: exercises the wall-clock
# harness end to end — including the warm+cold artifact-cache pair — and
# self-validates the JSON it writes (schema_version >= 2, cache block with
# hits >= 1 and cold_total_secs >= warm_total_secs).
cargo run --release -q -p mlscore-bench --bin repro -- \
    bench --quick --out target/BENCH_cpu_scoring.quick.json
cargo run --release -q -p mlscore-bench --bin repro -- \
    bench --check target/BENCH_cpu_scoring.quick.json
# The committed trajectory must stay parseable, non-empty, and carry a
# valid cache-stats block.
cargo run --release -q -p mlscore-bench --bin repro -- \
    bench --check BENCH_cpu_scoring.json

echo "== trace smoke (repro trace --cold / --warm) =="
# Both halves of the two-phase split must render a timeline.
cargo run --release -q -p mlscore-bench --bin repro -- \
    trace --cold --out target/trace_cold.json >/dev/null
cargo run --release -q -p mlscore-bench --bin repro -- \
    trace --warm --out target/trace_warm.json >/dev/null
grep -q '"model deserialization"' target/trace_cold.json
grep -q '"artifact cache hit"' target/trace_warm.json
if grep -q '"model deserialization"' target/trace_warm.json; then
    echo "ci: warm trace unexpectedly contains a cold-only span" >&2
    exit 1
fi

echo "ci: all checks passed"
