//! The paper's qualitative claims, asserted with tolerance bands against
//! the calibrated models. These are the acceptance tests of the
//! reproduction: if a refactor moves a constant, these tests say whether
//! the *shape* of the evaluation — who wins, by roughly what factor, where
//! crossovers fall — still matches §IV.

use mlscore_core::calibration::RECORD_SWEEP;
use mlscore_core::experiment::SweepPoint;
use mlscore_core::figures;
use mlscore_core::headline::HeadlineReport;
use mlscore_core::shmoo::ShmooTable;
use mlscore_data::DatasetSpec;
use mlscore_sim::Stage;

fn headlines() -> HeadlineReport {
    HeadlineReport::compute()
}

#[test]
fn fig8_fpga_speedups_match_paper_band() {
    let h = headlines();
    // Paper: 54x (IRIS) and 69.7x (HIGGS) at 128 trees, 10 levels, 1M.
    assert!(
        (35.0..80.0).contains(&h.iris_fpga_speedup),
        "IRIS FPGA speedup {} outside band (paper 54x)",
        h.iris_fpga_speedup
    );
    assert!(
        (45.0..100.0).contains(&h.higgs_fpga_speedup),
        "HIGGS FPGA speedup {} outside band (paper 69.7x)",
        h.higgs_fpga_speedup
    );
}

#[test]
fn speedup_grows_with_dataset_features() {
    // §IV-C2: "by increasing the number of dataset features, the amount of
    // GPU/FPGA speedup grows" (54x -> 69.7x, 7.5x -> 16.5x).
    let h = headlines();
    assert!(h.higgs_fpga_speedup > h.iris_fpga_speedup);
    assert!(h.higgs_gpu_speedup > h.iris_gpu_speedup);
}

#[test]
fn speedup_grows_with_model_complexity() {
    // §IV-C2: IRIS FPGA speedup rises from 2.9x (1 tree, 6 levels) to 54x
    // (128 trees, 10 levels).
    let h = headlines();
    assert!(h.iris_fpga_speedup > 5.0 * h.iris_small_fpga_speedup);
    assert!(
        h.iris_small_fpga_speedup > 1.5,
        "small-model FPGA speedup {}",
        h.iris_small_fpga_speedup
    );
}

#[test]
fn gpu_wins_simple_models_fpga_wins_complex() {
    // Fig. 8: at 1M records, the GPU beats the FPGA for the 1-tree IRIS
    // model (paper: 2.3x), while the FPGA wins at 128 trees for both
    // datasets.
    let simple = SweepPoint::evaluate(DatasetSpec::Iris, 1, 10, 1_000_000);
    let gpu = simple.best_gpu().expect("HB supports IRIS").total();
    let fpga = simple.result("FPGA").unwrap().total();
    assert!(
        gpu < fpga,
        "GPU {gpu} should beat FPGA {fpga} on 1-tree IRIS"
    );
    for dataset in DatasetSpec::all() {
        let complex = SweepPoint::evaluate(dataset, 128, 10, 1_000_000);
        assert_eq!(complex.best().backend, "FPGA", "{dataset:?}");
    }
}

#[test]
fn fpga_beats_gpu_by_paper_factor_on_heavy_models() {
    // §IV-C1: FPGA ~7x GPU for IRIS 128t and ~4.2x for HIGGS 128t at 1M.
    for (dataset, lo, hi) in [
        (DatasetSpec::Iris, 2.0, 40.0),
        (DatasetSpec::Higgs, 2.0, 20.0),
    ] {
        let p = SweepPoint::evaluate(dataset, 128, 10, 1_000_000);
        let ratio = p
            .best_gpu()
            .expect("GPU present")
            .total()
            .ratio(p.result("FPGA").unwrap().total());
        assert!(
            (lo..hi).contains(&ratio),
            "{dataset:?}: FPGA-over-GPU factor {ratio} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn cpu_wins_small_batches_everywhere() {
    // Fig. 8 top rows: CPU is best for the first decades of record counts,
    // for every model complexity.
    for dataset in DatasetSpec::all() {
        for trees in [1usize, 16, 128] {
            for n in [1u64, 10, 100] {
                let p = SweepPoint::evaluate(dataset, trees, 10, n);
                assert!(
                    p.best().backend.starts_with("CPU"),
                    "{dataset:?} {trees}t n={n}: best is {}",
                    p.best().backend
                );
            }
        }
    }
}

#[test]
fn crossovers_fall_in_paper_bands_and_order() {
    let h = headlines();
    let iris1 = h.iris_crossover_1_tree.expect("IRIS 1t crossover exists");
    let iris128 = h
        .iris_crossover_128_trees
        .expect("IRIS 128t crossover exists");
    let higgs1 = h.higgs_crossover_1_tree.expect("HIGGS 1t crossover exists");
    let higgs128 = h
        .higgs_crossover_128_trees
        .expect("HIGGS 128t crossover exists");
    // Paper: IRIS 10K / 1K; HIGGS 5K / 500. Allow an order of magnitude.
    assert!(
        (1_000..=100_000).contains(&iris1),
        "IRIS 1t crossover {iris1}"
    );
    assert!(
        (100..=10_000).contains(&iris128),
        "IRIS 128t crossover {iris128}"
    );
    assert!(
        (1_000..=100_000).contains(&higgs1),
        "HIGGS 1t crossover {higgs1}"
    );
    assert!(
        (100..=10_000).contains(&higgs128),
        "HIGGS 128t crossover {higgs128}"
    );
    // Orderings the paper emphasizes: more complex models cross earlier,
    // and HIGGS crosses no later than IRIS at equal complexity.
    assert!(iris128 < iris1);
    assert!(higgs128 < higgs1);
    assert!(higgs128 <= iris128);
    assert!(higgs1 <= iris1);
}

#[test]
fn rapids_overtakes_hummingbird_near_700k() {
    let h = headlines();
    let n = h.rapids_beats_hb_at.expect("RAPIDS must overtake HB");
    assert!(
        (200_000..=1_000_000).contains(&n),
        "RAPIDS/HB crossover at {n}, paper ~700K"
    );
}

#[test]
fn mispick_penalties_match_paper_magnitudes() {
    let h = headlines();
    // "a wrong decision to offload ... can increase the latency by 10x".
    assert!(
        (4.0..25.0).contains(&h.wrong_offload_penalty),
        "wrong-offload penalty {}",
        h.wrong_offload_penalty
    );
    // "a wrong decision to not offload ... 70x lower throughput".
    assert!(
        (40.0..110.0).contains(&h.wrong_stay_penalty),
        "wrong-stay penalty {}",
        h.wrong_stay_penalty
    );
}

#[test]
fn query_speedup_matches_fig11() {
    // "with 1M records of HIGGS ... query speedup of about 2.6x".
    let h = headlines();
    assert!(
        (1.8..4.5).contains(&h.query_speedup_higgs),
        "query speedup {}",
        h.query_speedup_higgs
    );
}

#[test]
fn fig7a_small_batches_dominated_by_transfer_and_software() {
    // §IV-B: "for the small number of records, input transfer time and the
    // software overhead are the dominant components" and "although the
    // scoring itself is in the order of nanoseconds, the overall time is in
    // milliseconds".
    for r in figures::fig7a() {
        let scoring = r.breakdown.get(Stage::Scoring);
        assert!(scoring.as_micros() < 10.0, "scoring {scoring}");
        assert!(r.breakdown.total().as_millis() >= 1.0);
        let top_two: f64 = r.breakdown.fraction(Stage::InputTransfer)
            + r.breakdown.fraction(Stage::SoftwareOverhead);
        assert!(top_two > 0.5, "transfer+software fraction {top_two}");
    }
}

#[test]
fn fig7b_large_batches_dominated_by_scoring() {
    // §IV-B: at 1M records "the scoring time ... dominates the overall FPGA
    // model scoring time"; setup/signal/software stay constant.
    let one = figures::fig7a();
    let million = figures::fig7b();
    for (a, b) in one.iter().zip(&million) {
        assert_eq!(b.breakdown.dominant().unwrap().0, Stage::Scoring);
        for stage in [
            Stage::AcceleratorSetup,
            Stage::CompletionSignal,
            Stage::SoftwareOverhead,
        ] {
            assert_eq!(
                a.breakdown.get(stage),
                b.breakdown.get(stage),
                "{stage} must be record-count independent"
            );
        }
        // Result transfer grows with records.
        assert!(b.breakdown.get(Stage::ResultTransfer) > a.breakdown.get(Stage::ResultTransfer));
    }
}

#[test]
fn fig7_input_transfer_grows_with_model_and_features() {
    // §IV-B: bigger models (more trees) and more features mean more model
    // bytes to push into the tree memories.
    let iris_1 = figures::fig7(DatasetSpec::Iris, 1, 10, 1);
    let iris_128 = figures::fig7(DatasetSpec::Iris, 128, 10, 1);
    assert!(
        iris_128.breakdown.get(Stage::InputTransfer) > iris_1.breakdown.get(Stage::InputTransfer)
    );
}

#[test]
fn shmoo_regions_are_monotone_in_both_axes() {
    // Once an accelerator wins a cell, adding records (down a column) must
    // not hand the cell back to the CPU.
    for dataset in DatasetSpec::all() {
        let t = ShmooTable::paper_grid(dataset);
        for col in 0..t.tree_counts.len() {
            let mut seen_accel = false;
            for row in 0..t.record_counts.len() {
                let family = t.cells[row][col].family().to_string();
                if seen_accel {
                    assert_ne!(
                        family, "CPU",
                        "{dataset:?}: CPU reappears below an accelerator cell \
                         (col {col}, row {row})"
                    );
                }
                if family != "CPU" {
                    seen_accel = true;
                }
            }
        }
    }
}

#[test]
fn onnx_vs_sklearn_crossover_near_5k() {
    // §IV-C2: ONNX (1 thread) beats scikit-learn below ~5K records for a
    // single-tree model, and loses above.
    let c = figures::fig9(DatasetSpec::Iris, 1, 10);
    let small_idx = RECORD_SWEEP.iter().position(|&n| n == 100).unwrap();
    let large_idx = RECORD_SWEEP.iter().position(|&n| n == 1_000_000).unwrap();
    let onnx = c.series_for("CPU_ONNX").unwrap();
    let sklearn = c.series_for("CPU_SKLearn_52th").unwrap();
    assert!(onnx.totals[small_idx] < sklearn.totals[small_idx]);
    assert!(onnx.totals[large_idx] > sklearn.totals[large_idx]);
}

#[test]
fn rapids_has_flat_high_floor_at_small_batches() {
    // §IV-C2: RAPIDS latency is ~120 ms at small record counts because of
    // the cuDF conversion, far above HB.
    let c = figures::fig9(DatasetSpec::Higgs, 1, 10);
    let rapids = c.latency("GPU-RAPIDS", 1).unwrap();
    let hb = c.latency("GPU-HB", 1).unwrap();
    assert!(rapids.as_millis() > 50.0, "RAPIDS floor {rapids}");
    assert!(rapids.ratio(hb) > 10.0);
}

#[test]
fn throughput_of_accelerators_rises_with_batch_size() {
    // Fig. 10: FPGA/GPU throughput is tiny at small batches and grows as
    // offload costs amortize.
    let c = figures::fig9(DatasetSpec::Higgs, 128, 10);
    for backend in ["FPGA", "GPU-HB"] {
        let t_small = c.throughput(backend, 10).unwrap();
        let t_large = c.throughput(backend, 1_000_000).unwrap();
        assert!(
            t_large > 100.0 * t_small,
            "{backend}: {t_small} -> {t_large}"
        );
    }
}

#[test]
fn fpga_throughput_order_of_magnitude_matches_paper() {
    // HIGGS 128t/1M FPGA: ~90M scorings/s in our model (the paper's chart
    // peaks near 10^8/s as well).
    let c = figures::fig9(DatasetSpec::Higgs, 128, 10);
    let fpga = c.throughput("FPGA", 1_000_000).unwrap();
    assert!(
        (2e7..3e8).contains(&fpga),
        "FPGA throughput {fpga} scorings/s"
    );
}
