//! Cross-model integration: random forests and gradient-boosted trees
//! trained on the same data, compared on accuracy and on how they map onto
//! the study's infrastructure (flat layouts, model statistics).

use mlscore::prelude::*;
use mlscore_data::train_test_split;
use mlscore_forest::{
    metrics::accuracy, FlatTree, ForestBuilder, GradientBoost, GradientBoostConfig, TrainOptions,
};

#[test]
fn forest_and_gbdt_both_learn_higgs() {
    let data = Dataset::higgs(1_200, 13);
    let (train, test) = train_test_split(&data, 0.8, 2).unwrap();
    let (x, y) = (train.frame().as_slice(), train.labels());

    let forest = ForestBuilder::new(
        12,
        TrainOptions {
            max_depth: 7,
            seed: 4,
            ..Default::default()
        },
    )
    .train_classifier(x, 28, y, 2)
    .unwrap();
    let gbdt = GradientBoost::train_binary(
        x,
        28,
        y,
        &GradientBoostConfig {
            n_stages: 18,
            depth: 4,
            learning_rate: 0.3,
            seed: 4,
        },
    )
    .unwrap();

    let majority = {
        let ones = test.labels().iter().filter(|&&c| c == 1).count();
        ones.max(test.labels().len() - ones) as f64 / test.labels().len() as f64
    };
    let forest_preds = forest.predict_batch(test.frame().as_slice());
    let forest_acc = accuracy(forest_preds.as_classes().unwrap(), test.labels());
    let gbdt_preds: Vec<u32> = test
        .frame()
        .rows()
        .map(|row| gbdt.predict_class(row))
        .collect();
    let gbdt_acc = accuracy(&gbdt_preds, test.labels());
    assert!(
        forest_acc > majority,
        "forest {forest_acc} vs majority {majority}"
    );
    assert!(
        gbdt_acc > majority,
        "gbdt {gbdt_acc} vs majority {majority}"
    );
}

#[test]
fn gbdt_stage_trees_flatten_like_forest_trees() {
    // Each boosting stage is an ordinary DecisionTree, so the FPGA's flat
    // layout applies per stage — the path by which a boosted model would
    // ride the same engine.
    let x: Vec<f32> = (0..200).map(|i| i as f32 / 200.0).collect();
    let y: Vec<f32> = x.iter().map(|&v| (v * 4.0).sin()).collect();
    let model = GradientBoost::train_regressor(
        &x,
        1,
        &y,
        &GradientBoostConfig {
            n_stages: 8,
            depth: 4,
            ..Default::default()
        },
    )
    .unwrap();
    for tree in model.trees() {
        let flat = FlatTree::from_tree(tree, 10).unwrap();
        // Flat scoring of the stage agrees with tree scoring.
        for &v in &[0.1f32, 0.4, 0.9] {
            assert_eq!(flat.score(&[v]), tree.predict(&[v]).as_value().unwrap());
        }
    }
}

#[test]
fn gbdt_probabilities_are_probabilities() {
    let data = Dataset::higgs(400, 21);
    let model = GradientBoost::train_binary(
        data.frame().as_slice(),
        28,
        data.labels(),
        &GradientBoostConfig {
            n_stages: 10,
            depth: 3,
            learning_rate: 0.3,
            seed: 1,
        },
    )
    .unwrap();
    for row in data.frame().rows().take(100) {
        let p = model.predict_proba(row);
        assert!((0.0..=1.0).contains(&p), "probability {p}");
        assert_eq!(model.predict_class(row), u32::from(p > 0.5));
    }
}
