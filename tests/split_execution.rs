//! Property tests for §III-B split execution: for any tree shape and any
//! data, splitting traversal between the FPGA (first 10 levels) and the
//! CPU (the rest) must be observationally identical to pure CPU scoring.

use proptest::prelude::*;

use mlscore::prelude::*;
use mlscore_fpga::{split_score, EngineConfig, FpgaDevice, InferenceEngine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn split_matches_reference_for_any_depth(
        n_trees in 1usize..8,
        depth in 1usize..16,
        max_leaves in 2usize..400,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::classification(n_trees, 4, 3).with_depth(depth);
        let forest = RandomForest::synthetic_capped(&cfg, max_leaves, seed);
        let data: Vec<f32> = (0..48 * 4)
            .map(|i| ((i as f32 * 0.377) + (seed % 97) as f32 * 0.01) % 1.0)
            .collect();
        let frame = TabularFrame::from_rows(data, 4).unwrap();
        let engine = InferenceEngine::paper_default();
        let (preds, report) = split_score(&engine, &forest, &frame);
        prop_assert_eq!(preds, forest.predict_batch(frame.as_slice()));
        // Accounting invariant: every (record, tree) traversal is counted
        // exactly once.
        prop_assert_eq!(
            report.finished_on_fpga + report.continued_on_cpu,
            (frame.n_rows() * n_trees) as u64
        );
        // Within the depth budget nothing ever reaches the CPU.
        if depth <= engine.config().max_depth {
            prop_assert_eq!(report.continued_on_cpu, 0);
        }
    }

    #[test]
    fn smaller_engine_budgets_push_more_work_to_cpu(
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::classification(4, 4, 2).with_depth(14);
        let forest = RandomForest::synthetic_capped(&cfg, 500, seed);
        let data: Vec<f32> = (0..32 * 4).map(|i| (i as f32 * 0.61) % 1.0).collect();
        let frame = TabularFrame::from_rows(data, 4).unwrap();
        let mut prev_cpu_visits = None;
        for budget in [12usize, 10, 8, 6] {
            let engine = InferenceEngine::new(
                FpgaDevice::stratix10_gx2800(),
                EngineConfig { max_depth: budget, ..EngineConfig::default() },
            );
            let (preds, report) = split_score(&engine, &forest, &frame);
            prop_assert_eq!(preds, forest.predict_batch(frame.as_slice()));
            if let Some(prev) = prev_cpu_visits {
                prop_assert!(
                    report.cpu_visits >= prev,
                    "shrinking the budget must not shrink CPU work"
                );
            }
            prev_cpu_visits = Some(report.cpu_visits);
        }
    }
}
