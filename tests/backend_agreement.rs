//! Cross-backend functional agreement: every backend in the study — both
//! CPU engines, both GPU strategies, and the FPGA engine — must produce
//! bit-for-bit identical predictions to reference tree traversal, for any
//! model shape and any data. This is the core correctness property of the
//! reproduction: the backends differ only in *how long* the models say they
//! take, never in *what* they compute.

use proptest::prelude::*;

use mlscore::prelude::*;
use mlscore_backend::{OnnxCpu, SklearnCpu};
use mlscore_forest::Predictions;
use mlscore_fpga::FpgaBackend;
use mlscore_gpu::{HummingbirdGpu, RapidsFil};

/// All backends that support arbitrary classification models.
fn universal_backends() -> Vec<Box<dyn ScoringBackend>> {
    vec![
        Box::new(SklearnCpu::with_threads(4)),
        Box::new(SklearnCpu::with_threads(1)),
        Box::new(OnnxCpu::single_thread()),
        Box::new(OnnxCpu::with_threads(4)),
        Box::new(HummingbirdGpu::p100()),
        Box::new(FpgaBackend::paper_default()),
    ]
}

fn arb_frame(n_features: usize) -> impl Strategy<Value = TabularFrame> {
    proptest::collection::vec(0.0f32..1.0, n_features..=n_features * 40).prop_map(move |mut v| {
        v.truncate(v.len() / n_features * n_features);
        TabularFrame::from_rows(v, n_features).expect("length is a multiple of n_features")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_backends_agree_on_full_forests(
        n_trees in 1usize..12,
        depth in 0usize..8,
        n_features in 1usize..10,
        n_classes in 2u32..5,
        seed in any::<u64>(),
        frame in (2usize..8).prop_flat_map(arb_frame),
    ) {
        // Regenerate the frame at the forest's width.
        let cfg = ForestConfig::classification(n_trees, n_features, n_classes)
            .with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let rows = frame.n_rows().max(1);
        let data: Vec<f32> = (0..rows * n_features)
            .map(|i| frame.as_slice()[i % frame.as_slice().len().max(1)])
            .collect();
        let frame = TabularFrame::from_rows(data, n_features).unwrap();
        let reference = forest.predict_batch(frame.as_slice());
        let request = ScoringRequest::new(&forest, &frame).unwrap();
        for backend in universal_backends() {
            let preds = backend.score(&request).unwrap();
            prop_assert_eq!(
                &preds,
                &reference,
                "backend {} disagrees with reference",
                backend.name()
            );
        }
    }

    #[test]
    fn all_backends_agree_on_capped_forests(
        n_trees in 1usize..10,
        max_leaves in 1usize..200,
        n_features in 1usize..8,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::classification(n_trees, n_features, 3).with_depth(10);
        let forest = RandomForest::synthetic_capped(&cfg, max_leaves, seed);
        let data: Vec<f32> = (0..64 * n_features)
            .map(|i| ((i as f32 * 0.618) + seed as f32 * 1e-3) % 1.0)
            .collect();
        let frame = TabularFrame::from_rows(data, n_features).unwrap();
        let reference = forest.predict_batch(frame.as_slice());
        let request = ScoringRequest::new(&forest, &frame).unwrap();
        for backend in universal_backends() {
            let preds = backend.score(&request).unwrap();
            prop_assert_eq!(
                &preds,
                &reference,
                "backend {} disagrees with reference",
                backend.name()
            );
        }
    }

    #[test]
    fn rapids_agrees_on_binary_models(
        n_trees in 1usize..10,
        depth in 1usize..8,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::classification(n_trees, 6, 2).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let data: Vec<f32> = (0..50 * 6).map(|i| (i as f32 * 0.37) % 1.0).collect();
        let frame = TabularFrame::from_rows(data, 6).unwrap();
        let request = ScoringRequest::new(&forest, &frame).unwrap();
        let preds = RapidsFil::p100().score(&request).unwrap();
        prop_assert_eq!(preds, forest.predict_batch(frame.as_slice()));
    }

    #[test]
    fn regression_backends_agree(
        n_trees in 1usize..8,
        depth in 0usize..7,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::regression(n_trees, 4).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let data: Vec<f32> = (0..40 * 4).map(|i| (i as f32 * 0.29) % 1.0).collect();
        let frame = TabularFrame::from_rows(data, 4).unwrap();
        let request = ScoringRequest::new(&forest, &frame).unwrap();
        let reference = forest.predict_batch(frame.as_slice());
        let reference_vals = reference.as_values().unwrap();
        for backend in [
            Box::new(SklearnCpu::with_threads(3)) as Box<dyn ScoringBackend>,
            Box::new(OnnxCpu::single_thread()),
            Box::new(HummingbirdGpu::p100()),
            Box::new(FpgaBackend::paper_default()),
        ] {
            let preds = backend.score(&request).unwrap();
            let values = preds.as_values().unwrap();
            // Averaging order may differ (FPGA averages across passes), so
            // allow float tolerance — but it must be tiny.
            prop_assert_eq!(values.len(), reference_vals.len());
            for (got, want) in values.iter().zip(reference_vals) {
                prop_assert!(
                    (got - want).abs() <= 1e-4,
                    "backend {}: {} vs {}",
                    backend.name(),
                    got,
                    want
                );
            }
        }
    }
}

#[test]
fn empty_batch_agreement() {
    let cfg = ForestConfig::classification(3, 4, 2).with_depth(4);
    let forest = RandomForest::synthetic_full(&cfg, 1);
    let frame = TabularFrame::from_rows(vec![], 4).unwrap();
    let request = ScoringRequest::new(&forest, &frame).unwrap();
    for backend in universal_backends() {
        let preds = backend.score(&request).unwrap();
        assert_eq!(preds, Predictions::Classes(vec![]), "{}", backend.name());
    }
}
