//! Property tests on the data layer: CSV and columnar representations must
//! round-trip losslessly, and normalization must be idempotent and bounded.

use proptest::prelude::*;

use mlscore::prelude::*;
use mlscore_data::{csv, ColumnarFrame};

fn arb_frame() -> impl Strategy<Value = TabularFrame> {
    (1usize..8).prop_flat_map(|n_features| {
        proptest::collection::vec(-1e6f32..1e6, n_features..n_features * 30).prop_map(
            move |mut v| {
                v.truncate(v.len() / n_features * n_features);
                TabularFrame::from_rows(v, n_features).expect("shape consistent")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_preserves_frames(frame in arb_frame()) {
        prop_assume!(!frame.is_empty());
        let mut buf = Vec::new();
        csv::write_frame(&frame, &mut buf).unwrap();
        let back = csv::read_frame(buf.as_slice(), true).unwrap();
        prop_assert_eq!(back.n_rows(), frame.n_rows());
        prop_assert_eq!(back.n_features(), frame.n_features());
        for (a, b) in back.as_slice().iter().zip(frame.as_slice()) {
            // `{}` formatting of f32 round-trips exactly through parse.
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn columnar_roundtrip_is_exact(frame in arb_frame()) {
        let columnar = ColumnarFrame::from_rows(&frame);
        prop_assert_eq!(columnar.to_rows(), frame);
    }

    #[test]
    fn gather_row_agrees_with_row(frame in arb_frame()) {
        prop_assume!(!frame.is_empty());
        let columnar = ColumnarFrame::from_rows(&frame);
        let mut buf = vec![0f32; frame.n_features()];
        for i in 0..frame.n_rows().min(10) {
            columnar.gather_row(i, &mut buf);
            prop_assert_eq!(buf.as_slice(), frame.row(i));
        }
    }

    #[test]
    fn normalization_is_bounded_and_idempotent(frame in arb_frame()) {
        let once = frame.normalized();
        for &v in once.as_slice() {
            prop_assert!((0.0..=1.0).contains(&v), "value {v} out of bounds");
        }
        let twice = once.normalized();
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn replicate_to_preserves_row_identity(frame in arb_frame(), n in 0usize..100) {
        prop_assume!(!frame.is_empty());
        let replicated = frame.replicate_to(n);
        prop_assert_eq!(replicated.n_rows(), n);
        for i in 0..n {
            prop_assert_eq!(replicated.row(i), frame.row(i % frame.n_rows()));
        }
    }

    #[test]
    fn dataset_csv_roundtrip(n_rows in 1usize..50, seed in any::<u64>()) {
        let d = Dataset::higgs(n_rows, seed);
        let mut buf = Vec::new();
        csv::write_dataset(&d, &mut buf).unwrap();
        let back = csv::read_dataset(buf.as_slice(), true, d.name()).unwrap();
        prop_assert_eq!(back.labels(), d.labels());
        prop_assert_eq!(back.frame().n_rows(), d.frame().n_rows());
        for (a, b) in back.frame().as_slice().iter().zip(d.frame().as_slice()) {
            prop_assert_eq!(a, b);
        }
    }
}
