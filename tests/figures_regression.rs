//! Regression guards on the figure generators: determinism, structural
//! completeness, and export integrity. These catch accidental calibration
//! drift that the looser shape bands might admit.

use mlscore_core::{calibration, export, figures, shmoo::ShmooTable};
use mlscore_data::DatasetSpec;
use mlscore_sim::Stage;

#[test]
fn figure_generation_is_deterministic() {
    let a = figures::fig9_over(DatasetSpec::Higgs, 128, 10, &[1, 1_000, 1_000_000]);
    let b = figures::fig9_over(DatasetSpec::Higgs, 128, 10, &[1, 1_000, 1_000_000]);
    assert_eq!(a, b);
    let sa = ShmooTable::build(DatasetSpec::Iris, 10, &[1, 128], &[1, 1_000_000]);
    let sb = ShmooTable::build(DatasetSpec::Iris, 10, &[1, 128], &[1, 1_000_000]);
    assert_eq!(sa, sb);
}

#[test]
fn paper_models_are_stable_across_calls() {
    for dataset in DatasetSpec::all() {
        for trees in [1usize, 128] {
            assert_eq!(
                calibration::paper_model(dataset, trees, 10),
                calibration::paper_model(dataset, trees, 10)
            );
        }
    }
}

#[test]
fn fig9_series_sets_match_dataset_support() {
    // IRIS (3 classes): 5 series; HIGGS (binary): 6 series with RAPIDS.
    let iris = figures::fig9_over(DatasetSpec::Iris, 16, 10, &[100]);
    let higgs = figures::fig9_over(DatasetSpec::Higgs, 16, 10, &[100]);
    assert_eq!(iris.series.len(), 5);
    assert_eq!(higgs.series.len(), 6);
    let names: Vec<&str> = higgs.series.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "CPU_SKLearn_52th",
        "CPU_ONNX",
        "CPU_ONNX_52th",
        "GPU-HB",
        "GPU-RAPIDS",
        "FPGA",
    ] {
        assert!(names.contains(&expected), "missing series {expected}");
    }
}

#[test]
fn latencies_are_monotone_in_record_count() {
    // Every backend's modelled latency must be non-decreasing in batch
    // size, for every panel configuration.
    for dataset in DatasetSpec::all() {
        for trees in [1usize, 128] {
            let c = figures::fig9(dataset, trees, 10);
            for s in &c.series {
                for w in s.totals.windows(2) {
                    assert!(
                        w[1] >= w[0],
                        "{dataset:?} {trees}t {}: latency decreased with batch size",
                        s.name
                    );
                }
            }
        }
    }
}

#[test]
fn deeper_trees_never_score_faster() {
    for dataset in DatasetSpec::all() {
        let d6 = figures::fig9_over(dataset, 128, 6, &[1_000_000]);
        let d10 = figures::fig9_over(dataset, 128, 10, &[1_000_000]);
        for s6 in &d6.series {
            if let Some(s10) = d10.series_for(&s6.name) {
                assert!(
                    s10.totals[0] >= s6.totals[0] * 0.99,
                    "{dataset:?} {}: depth 10 faster than depth 6",
                    s6.name
                );
            }
        }
    }
}

#[test]
fn export_save_all_is_reproducible() {
    let base = std::env::temp_dir().join(format!("mlscore_regr_{}", std::process::id()));
    let dir_a = base.join("a");
    let dir_b = base.join("b");
    let wrote_a = export::save_all(&dir_a).unwrap();
    let wrote_b = export::save_all(&dir_b).unwrap();
    assert_eq!(wrote_a, wrote_b);
    for name in &wrote_a {
        let a = std::fs::read(dir_a.join(name)).unwrap();
        let b = std::fs::read(dir_b.join(name)).unwrap();
        assert_eq!(a, b, "{name} differs between runs");
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn fig7_totals_are_consistent_with_component_sum() {
    for r in figures::fig7a().iter().chain(figures::fig7b().iter()) {
        let component_sum: f64 = Stage::fpga_breakdown_order()
            .iter()
            .map(|&s| r.breakdown.get(s).as_secs())
            .sum();
        assert!(
            (component_sum - r.breakdown.total().as_secs()).abs() < 1e-12,
            "breakdown contains stages outside the Fig. 7 taxonomy"
        );
    }
}

#[test]
fn shmoo_gpu_row_matches_manual_computation() {
    let table = ShmooTable::paper_grid(DatasetSpec::Higgs);
    for (j, &trees) in table.tree_counts.iter().enumerate() {
        let point = mlscore_core::experiment::SweepPoint::evaluate(
            DatasetSpec::Higgs,
            trees,
            10,
            1_000_000,
        );
        let expected = point
            .best_gpu()
            .map(|g| point.best_cpu().total().ratio(g.total()));
        match (expected, table.gpu_row[j]) {
            (Some(e), Some(g)) => assert!((e - g).abs() < 1e-9),
            (None, None) => {}
            other => panic!("gpu row mismatch at {trees} trees: {other:?}"),
        }
    }
}
