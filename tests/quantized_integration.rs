//! Quantized-layout integration: fidelity across the paper's model shapes
//! and the BRAM-capacity arithmetic the A10 ablation relies on.

use mlscore::prelude::*;
use mlscore_forest::{FlatForest, QuantScheme, QuantizedForest};

#[test]
fn quantized_fidelity_across_paper_shapes() {
    for (n_trees, depth, n_features, n_classes) in [
        (1usize, 6usize, 4usize, 3u32),
        (16, 10, 4, 3),
        (128, 10, 28, 2),
    ] {
        let cfg = ForestConfig::classification(n_trees, n_features, n_classes).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, 5);
        let quant = QuantizedForest::from_forest(&forest, QuantScheme::unit(n_features)).unwrap();
        let records: Vec<f32> = (0..800 * n_features)
            .map(|i| (i as f32 * 0.317) % 1.0)
            .collect();
        let rate = quant.mismatch_rate(&forest, &records);
        assert!(
            rate < 0.02,
            "{n_trees}t/{depth}l/{n_features}f: mismatch rate {rate}"
        );
    }
}

#[test]
fn quantization_halves_live_bytes_for_every_shape() {
    for depth in [4usize, 8, 10] {
        let cfg = ForestConfig::classification(8, 6, 3).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, 7);
        let quant = QuantizedForest::from_forest(&forest, QuantScheme::unit(6)).unwrap();
        let flat = FlatForest::from_forest(&forest, depth).unwrap();
        let live: usize = flat.trees().iter().map(|t| t.live_bytes()).sum();
        assert_eq!(quant.footprint_bytes() * 2, live, "depth {depth}");
    }
}

#[test]
fn quantized_capacity_doubles_resident_trees() {
    // The A10 claim: within the Stratix-10's ~28.6 MB BRAM budget reserved
    // for tree memories (4 MiB in the paper's 128-PE configuration), the
    // quantized layout fits twice the trees.
    let budget_bytes = 128usize * 2048 * 16; // the paper's f32 tree memories
    let f32_tree_bytes = 2048 * 16; // padded depth-10 tree, Fig. 4b layout
    let quant_tree_bytes = 2047 * 8; // live records, 8 B each
    let f32_capacity = budget_bytes / f32_tree_bytes;
    let quant_capacity = budget_bytes / quant_tree_bytes;
    assert_eq!(f32_capacity, 128);
    assert!(quant_capacity >= 256, "quantized capacity {quant_capacity}");
}

#[test]
fn data_driven_scheme_beats_unit_scheme_on_raw_features() {
    // On *unnormalized* IRIS data (sepal lengths up to ~8 cm), a unit
    // scheme saturates every comparison; a scheme built from the real
    // feature ranges preserves fidelity.
    let data = Dataset::iris(400, 9); // raw, not normalized
    let mut mins = vec![f32::INFINITY; 4];
    let mut maxs = vec![f32::NEG_INFINITY; 4];
    for row in data.frame().rows() {
        for (j, &v) in row.iter().enumerate() {
            mins[j] = mins[j].min(v);
            maxs[j] = maxs[j].max(v);
        }
    }
    // A model whose thresholds live in raw feature units.
    let trained = mlscore_forest::ForestBuilder::new(
        9,
        mlscore_forest::TrainOptions {
            max_depth: 6,
            seed: 2,
            ..Default::default()
        },
    )
    .train_classifier(data.frame().as_slice(), 4, data.labels(), 3)
    .unwrap();

    let ranged =
        QuantizedForest::from_forest(&trained, QuantScheme::from_ranges(&mins, &maxs)).unwrap();
    let unit = QuantizedForest::from_forest(&trained, QuantScheme::unit(4)).unwrap();
    let ranged_rate = ranged.mismatch_rate(&trained, data.frame().as_slice());
    let unit_rate = unit.mismatch_rate(&trained, data.frame().as_slice());
    assert!(ranged_rate < 0.02, "ranged scheme mismatch {ranged_rate}");
    assert!(
        unit_rate > ranged_rate,
        "unit scheme ({unit_rate}) should be worse than ranged ({ranged_rate}) on raw data"
    );
}
