//! Property tests for the fused scan→featurize→score path: streaming
//! chunks through `score_prepared_stream` must be bit-exact with scoring
//! the staged (materialized, pre-normalized) frame — across backends,
//! chunk sizes, and executor thread counts.

use proptest::prelude::*;

use mlscore::backend::{compile, OnnxCpu, SklearnCpu};
use mlscore::forest::ModelBundle;
use mlscore::prelude::*;
use mlscore::sched::paper_backends;

/// The chunk sizes the contract must hold at: degenerate single-row
/// chunks, a sub-lane tail on every chunk, exactly one SIMD lane group,
/// and a chunk bigger than any test frame (one pull).
const CHUNK_SIZES: [usize; 4] = [
    1,
    mlscore::exec::kernel::LANES - 1,
    mlscore::exec::kernel::LANES,
    4096,
];

fn arb_frame() -> impl Strategy<Value = TabularFrame> {
    (1usize..6).prop_flat_map(|n_features| {
        proptest::collection::vec(-1e6f32..1e6, n_features..n_features * 40).prop_map(
            move |mut v| {
                v.truncate(v.len() / n_features * n_features);
                TabularFrame::from_rows(v, n_features).expect("shape consistent")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused == staged on both CPU backends at every chunk size and two
    /// executor widths. The staged reference materializes the normalized
    /// copy and scores it whole; the fused side streams normalized chunks
    /// off the raw frame.
    #[test]
    fn fused_matches_staged_across_backends_chunks_and_threads(
        frame in arb_frame(),
        seed in 0u64..512,
    ) {
        prop_assume!(!frame.is_empty());
        let forest = RandomForest::synthetic_full(
            &ForestConfig::classification(12, frame.n_features(), 3).with_depth(6),
            seed,
        );
        let bundle = ModelBundle::serialize(&forest);
        for threads in [1usize, 4] {
            let backends: [Box<dyn ScoringBackend>; 2] = [
                Box::new(SklearnCpu::with_threads(threads)),
                Box::new(OnnxCpu::with_threads(threads)),
            ];
            for backend in &backends {
                let model = compile(&**backend, &bundle).expect("compile");
                let staged = backend
                    .score_prepared(&model, &frame.normalized())
                    .expect("staged scoring");
                for chunk_rows in CHUNK_SIZES {
                    let mut stream = NormalizeStream::new(
                        FrameScanner::new(&frame, chunk_rows),
                        NormParams::fit(&frame),
                    );
                    let out = backend
                        .score_prepared_stream(&model, &mut stream)
                        .expect("fused scoring");
                    prop_assert_eq!(out.rows, frame.n_rows());
                    prop_assert_eq!(
                        &out.predictions,
                        &staged,
                        "fused diverged on {} at chunk_rows={} threads={}",
                        backend.name(),
                        chunk_rows,
                        threads
                    );
                }
            }
        }
    }
}

/// Every paper backend — including the offload devices that take the
/// default materialize-and-delegate stream path — honours the fused
/// bit-exactness contract at every chunk size.
#[test]
fn fused_matches_staged_on_every_paper_backend() {
    let raw = Dataset::higgs(700, 11);
    let frame = raw.frame();
    let forest = RandomForest::synthetic_full(
        &ForestConfig::classification(16, frame.n_features(), 2).with_depth(7),
        3,
    );
    let bundle = ModelBundle::serialize(&forest);
    for backend in paper_backends() {
        let model = compile(&*backend, &bundle).expect("compile");
        let staged = backend
            .score_prepared(&model, &frame.normalized())
            .expect("staged scoring");
        for chunk_rows in CHUNK_SIZES {
            let mut stream =
                NormalizeStream::new(FrameScanner::new(frame, chunk_rows), NormParams::fit(frame));
            let out = backend
                .score_prepared_stream(&model, &mut stream)
                .expect("fused scoring");
            assert_eq!(out.rows, frame.n_rows());
            assert_eq!(
                out.predictions,
                staged,
                "fused diverged on {} at chunk_rows={chunk_rows}",
                backend.name()
            );
            // Chunk accounting partitions the rows exactly.
            assert_eq!(
                out.chunks.iter().map(|c| c.rows).sum::<usize>(),
                frame.n_rows()
            );
        }
    }
}
