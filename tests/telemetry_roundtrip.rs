//! Telemetry round-trip properties: the breakdown reconstructed from a
//! recorded span trace must equal the directly computed one, stage for
//! stage and bit for bit, and exported Perfetto JSON must parse with
//! consistent per-thread timestamps.

use std::collections::BTreeMap;

use proptest::prelude::*;

use mlscore::prelude::*;
use mlscore_backend::{OnnxCpu, SklearnCpu};
use mlscore_forest::ModelBundle;
use mlscore_fpga::FpgaBackend;
use mlscore_gpu::{HummingbirdGpu, RapidsFil};
use mlscore_pipeline::QueryPipeline;
use mlscore_telemetry::{json, perfetto};

fn backend(idx: usize) -> Box<dyn ScoringBackend> {
    match idx % 6 {
        0 => Box::new(SklearnCpu::paper_default()),
        1 => Box::new(OnnxCpu::single_thread()),
        2 => Box::new(OnnxCpu::paper_52th()),
        3 => Box::new(HummingbirdGpu::p100()),
        4 => Box::new(RapidsFil::p100()),
        _ => Box::new(FpgaBackend::paper_default()),
    }
}

/// Runs a traced pipeline estimate and returns everything a property needs
/// to compare against the untraced path.
fn run_traced(
    trees: usize,
    depth: usize,
    features: usize,
    n_records: u64,
    idx: usize,
) -> (TimingBreakdown, TimingBreakdown, TimingBreakdown, Trace) {
    let forest = RandomForest::synthetic_full(
        &ForestConfig::classification(trees, features, 2).with_depth(depth),
        7,
    );
    let stats = ModelStats::of(&forest);
    let bundle = ModelBundle::serialize(&forest);

    let direct_scoring = backend(idx).estimate(&stats, n_records);
    let pipeline = QueryPipeline::new(backend(idx));
    let direct = pipeline.estimate(&stats, bundle.len() as u64, n_records);

    let tracer = Tracer::new();
    let traced = pipeline.estimate_traced(
        &stats,
        bundle.len() as u64,
        n_records,
        &tracer,
        SimInstant::ZERO,
    );
    (direct, direct_scoring, traced, tracer.take())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole contract: folding the recorded spans back into a
    /// `TimingBreakdown` gives *exactly* the breakdown the untraced code
    /// path computes — for the Fig. 11 query scope and the Fig. 6/7
    /// offload scope alike, on every backend.
    #[test]
    fn span_fold_equals_direct_breakdown(
        trees in 1usize..150,
        depth in 4usize..=10,
        wide in any::<bool>(),
        exp in 0u32..7,
        idx in 0usize..6,
    ) {
        let features = if wide { 28 } else { 4 };
        let n_records = 10u64.pow(exp);
        let (direct, direct_scoring, traced, trace) =
            run_traced(trees, depth, features, n_records, idx);

        prop_assert_eq!(&traced, &direct);
        prop_assert_eq!(trace.breakdown(Scope::Query), direct);
        prop_assert_eq!(trace.breakdown(Scope::Offload), direct_scoring);
    }

    /// Tracing must never change the estimate itself: the disabled-tracer
    /// path and the recording path stay numerically identical.
    #[test]
    fn tracing_does_not_perturb_estimates(
        trees in 1usize..150,
        exp in 0u32..7,
        idx in 0usize..6,
    ) {
        let (direct, _, traced, _) = run_traced(trees, 8, 28, 10u64.pow(exp), idx);
        prop_assert_eq!(traced.total(), direct.total());
    }
}

/// Collects `(ts, dur)` pairs per `(pid, tid)` lane from exported JSON.
fn lanes_of(doc: &json::JsonValue) -> BTreeMap<(u64, u64), Vec<(f64, f64)>> {
    let mut lanes: BTreeMap<(u64, u64), Vec<(f64, f64)>> = BTreeMap::new();
    for event in doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array")
    {
        if event.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let pid = event.get("pid").and_then(|v| v.as_f64()).unwrap() as u64;
        let tid = event.get("tid").and_then(|v| v.as_f64()).unwrap() as u64;
        let ts = event.get("ts").and_then(|v| v.as_f64()).unwrap();
        let dur = event.get("dur").and_then(|v| v.as_f64()).unwrap();
        lanes.entry((pid, tid)).or_default().push((ts, dur));
    }
    lanes
}

/// HIGGS, 128 trees, 1M records — the acceptance configuration — exported
/// for each backend family. The JSON must parse with our own parser, carry
/// one duration event per recorded span, and every lane's events must be
/// non-overlapping once sorted by timestamp (spans on one lane are
/// sequential; concurrency lives on separate lanes).
#[test]
fn perfetto_export_parses_with_consistent_lane_timestamps() {
    for idx in 0..6 {
        let (_, _, _, trace) = run_traced(128, 10, 28, 1_000_000, idx);
        assert!(trace.len() >= 7, "backend {idx}: too few spans");

        let text = perfetto::to_json(&trace);
        let doc = json::parse(&text).unwrap_or_else(|e| {
            panic!("backend {idx}: invalid Perfetto JSON: {e:?}");
        });

        let lanes = lanes_of(&doc);
        let n_spans: usize = lanes.values().map(Vec::len).sum();
        assert_eq!(n_spans, trace.len(), "backend {idx}: span count mismatch");

        for ((pid, tid), mut spans) in lanes {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for pair in spans.windows(2) {
                let (ts0, dur0) = pair[0];
                let (ts1, _) = pair[1];
                assert!(dur0 >= 0.0, "backend {idx}: negative dur on {pid}/{tid}");
                // 1e-3 us = 1 ns slack for chained-instant rounding.
                assert!(
                    ts1 + 1e-3 >= ts0 + dur0,
                    "backend {idx}: lane {pid}/{tid} overlaps: \
                     [{ts0}, +{dur0}] then [{ts1}, ..]"
                );
            }
        }
    }
}

/// A trace with no recorded spans exports an empty-but-valid document.
#[test]
fn empty_trace_exports_valid_json() {
    let doc = json::parse(&perfetto::to_json(&Trace::new())).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
    assert!(events.is_empty());
}
