//! Two-phase compile/score integration: the artifact cache must be purely
//! an *amortization* — a cached, prepared model scores bit-for-bit the same
//! records as the one-shot `score` path on every backend in the study, a
//! second pipeline execution of the same bundle is a cache hit whose
//! backend-side breakdown is unchanged, and the warm/cold split is visible
//! in the exported Perfetto timeline.

use std::sync::Arc;

use proptest::prelude::*;

use mlscore::prelude::*;
use mlscore_backend::{ArtifactCache, CacheOutcome, OnnxCpu, SklearnCpu};
use mlscore_forest::ModelBundle;
use mlscore_fpga::FpgaBackend;
use mlscore_gpu::{HummingbirdGpu, RapidsFil};
use mlscore_pipeline::QueryPipeline;
use mlscore_sim::SimInstant;
use mlscore_telemetry::{perfetto, Scope, Tracer};

/// All six backends of the study. Binary classification keeps the
/// RAPIDS-FIL backend (binary-only) in the roster.
fn all_backends() -> Vec<Box<dyn ScoringBackend>> {
    vec![
        Box::new(SklearnCpu::with_threads(2)),
        Box::new(OnnxCpu::single_thread()),
        Box::new(OnnxCpu::with_threads(4)),
        Box::new(HummingbirdGpu::p100()),
        Box::new(RapidsFil::p100()),
        Box::new(FpgaBackend::paper_default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cached_prepared_scoring_is_bit_exact_on_every_backend(
        n_trees in 1usize..10,
        depth in 1usize..8,
        n_features in 1usize..8,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::classification(n_trees, n_features, 2).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let bundle = ModelBundle::serialize(&forest);
        let data: Vec<f32> = (0..48 * n_features)
            .map(|i| (i as f32 * 0.43 + seed as f32 * 1e-3) % 1.0)
            .collect();
        let frame = TabularFrame::from_rows(data, n_features).unwrap();
        let cache = ArtifactCache::new(16);
        for backend in all_backends() {
            let fresh = backend
                .score(&ScoringRequest::new(&forest, &frame).unwrap())
                .unwrap();
            let (model, o1) = cache.get_or_prepare(&backend, &bundle).unwrap();
            prop_assert_eq!(o1, CacheOutcome::Miss, "{}", backend.name());
            let cold = backend.score_prepared(&model, &frame).unwrap();
            let (model, o2) = cache.get_or_prepare(&backend, &bundle).unwrap();
            prop_assert_eq!(o2, CacheOutcome::Hit, "{}", backend.name());
            let warm = backend.score_prepared(&model, &frame).unwrap();
            prop_assert_eq!(&cold, &fresh, "cold prepared disagrees on {}", backend.name());
            prop_assert_eq!(&warm, &fresh, "warm prepared disagrees on {}", backend.name());
        }
    }
}

#[test]
fn second_execute_is_a_hit_with_identical_scoring_breakdown() {
    let forest =
        RandomForest::synthetic_full(&ForestConfig::classification(16, 8, 2).with_depth(6), 11);
    let bundle = ModelBundle::serialize(&forest);
    let data: Vec<f32> = (0..200 * 8).map(|i| (i as f32 * 0.37) % 1.0).collect();
    let frame = TabularFrame::from_rows(data, 8).unwrap();
    for backend in all_backends() {
        let name = backend.name().to_string();
        let pipeline = QueryPipeline::new(backend).with_cache(Arc::new(ArtifactCache::new(4)));
        let cold = pipeline.execute(&bundle, &frame).unwrap();
        let warm = pipeline.execute(&bundle, &frame).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Miss, "{name}");
        assert_eq!(warm.cache, CacheOutcome::Hit, "{name}");
        assert_eq!(warm.predictions, cold.predictions, "{name}");
        // The cache only amortizes compile: the backend-side scoring
        // breakdown is identical, while the end-to-end query gets cheaper.
        assert_eq!(warm.scoring_breakdown, cold.scoring_breakdown, "{name}");
        assert!(warm.total() < cold.total(), "{name}");
        let stats = pipeline.cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "{name}");
    }
}

#[test]
fn warm_cold_split_is_visible_in_perfetto_export() {
    let forest =
        RandomForest::synthetic_full(&ForestConfig::classification(32, 28, 2).with_depth(10), 5);
    let bundle = ModelBundle::serialize(&forest);
    let data: Vec<f32> = (0..64 * 28).map(|i| (i as f32 * 0.21) % 1.0).collect();
    let frame = TabularFrame::from_rows(data, 28).unwrap();
    let pipeline = QueryPipeline::new(FpgaBackend::paper_default())
        .with_cache(Arc::new(ArtifactCache::new(4)));

    let tracer = Tracer::new();
    pipeline
        .execute_traced(&bundle, &frame, &tracer, SimInstant::ZERO)
        .unwrap();
    let cold_trace = tracer.take();
    assert!(cold_trace
        .events()
        .iter()
        .any(|e| e.scope == Scope::Compile));
    let cold_json = perfetto::to_json(&cold_trace);
    assert!(
        cold_json.contains("deserialize bundle"),
        "compile spans missing"
    );
    assert!(cold_json.contains("lower model"), "compile spans missing");
    assert!(cold_json.contains("marshal model + records"));

    let tracer = Tracer::new();
    pipeline
        .execute_traced(&bundle, &frame, &tracer, SimInstant::ZERO)
        .unwrap();
    let warm_trace = tracer.take();
    assert!(!warm_trace
        .events()
        .iter()
        .any(|e| e.scope == Scope::Compile));
    let warm_json = perfetto::to_json(&warm_trace);
    assert!(
        warm_json.contains("artifact cache hit"),
        "warm marker missing"
    );
    assert!(
        !warm_json.contains("deserialize bundle"),
        "warm query re-compiled"
    );
    assert!(warm_json.contains("marshal records"));
}
