//! End-to-end query pipeline integration: train a model on synthetic data,
//! store it as a bundle, run the full T-SQL-style pipeline over every
//! backend, and check both functional results and breakdown structure.

use mlscore::prelude::*;
use mlscore_backend::{OnnxCpu, SklearnCpu};
use mlscore_forest::{metrics::accuracy, ForestBuilder, ModelBundle, TrainOptions};
use mlscore_fpga::FpgaBackend;
use mlscore_gpu::{HummingbirdGpu, RapidsFil};
use mlscore_pipeline::QueryPipeline;

/// Trains a small classifier on IRIS-like data and returns (bundle, test
/// set, expected accuracy floor already verified).
fn trained_iris() -> (ModelBundle, Dataset) {
    let data = Dataset::iris(600, 42);
    let (train, test) = mlscore_data::train_test_split(&data, 0.8, 7).unwrap();
    let forest = ForestBuilder::new(
        20,
        TrainOptions {
            max_depth: 8,
            seed: 3,
            ..Default::default()
        },
    )
    .train_classifier(
        train.frame().as_slice(),
        train.frame().n_features(),
        train.labels(),
        train.n_classes(),
    )
    .unwrap();
    // The model must actually have learned the task.
    let preds = forest.predict_batch(test.frame().as_slice());
    let acc = accuracy(preds.as_classes().unwrap(), test.labels());
    assert!(acc > 0.85, "trained IRIS accuracy {acc}");
    (ModelBundle::serialize(&forest), test)
}

#[test]
fn trained_model_flows_through_every_backend() {
    let (bundle, test) = trained_iris();
    let reference = QueryPipeline::new(SklearnCpu::with_threads(1))
        .execute(&bundle, test.frame())
        .unwrap()
        .predictions;
    let backends: Vec<Box<dyn ScoringBackend>> = vec![
        Box::new(SklearnCpu::with_threads(4)),
        Box::new(OnnxCpu::single_thread()),
        Box::new(HummingbirdGpu::p100()),
        Box::new(FpgaBackend::paper_default()),
    ];
    for backend in backends {
        let name = backend.name().to_string();
        let run = QueryPipeline::new(backend)
            .execute(&bundle, test.frame())
            .unwrap();
        assert_eq!(run.predictions, reference, "{name}");
        // Every Fig. 11 stage must be present.
        for stage in Stage::query_breakdown_order() {
            assert!(
                !run.breakdown.get(stage).is_zero(),
                "{name}: missing {stage}"
            );
        }
    }
}

#[test]
fn rapids_pipeline_rejects_multiclass_model() {
    let (bundle, test) = trained_iris(); // 3 classes
    let err = QueryPipeline::new(RapidsFil::p100())
        .execute(&bundle, test.frame())
        .unwrap_err();
    assert!(matches!(err, mlscore_pipeline::PipelineError::Backend(_)));
}

#[test]
fn trained_higgs_binary_model_works_on_rapids() {
    let data = Dataset::higgs(1_500, 5);
    let (train, test) = mlscore_data::train_test_split(&data, 0.8, 9).unwrap();
    let forest = ForestBuilder::new(
        10,
        TrainOptions {
            max_depth: 6,
            seed: 11,
            ..Default::default()
        },
    )
    .train_classifier(train.frame().as_slice(), 28, train.labels(), 2)
    .unwrap();
    let preds = forest.predict_batch(test.frame().as_slice());
    let acc = accuracy(preds.as_classes().unwrap(), test.labels());
    // Synthetic HIGGS is noisy by construction; the model must still beat
    // the majority-class baseline.
    let majority = {
        let ones = test.labels().iter().filter(|&&c| c == 1).count();
        (ones.max(test.labels().len() - ones)) as f64 / test.labels().len() as f64
    };
    assert!(
        acc > majority + 0.02,
        "accuracy {acc} vs majority {majority}"
    );

    let bundle = ModelBundle::serialize(&forest);
    let run = QueryPipeline::new(RapidsFil::p100())
        .execute(&bundle, test.frame())
        .unwrap();
    assert_eq!(run.predictions, preds);
}

#[test]
fn scoring_breakdown_is_a_component_of_the_query_breakdown() {
    let (bundle, test) = trained_iris();
    let run = QueryPipeline::new(FpgaBackend::paper_default())
        .execute(&bundle, test.frame())
        .unwrap();
    assert_eq!(
        run.breakdown.get(Stage::Scoring),
        run.scoring_breakdown.total(),
        "query scoring stage must equal the backend's total"
    );
    assert!(run.total() > run.scoring_breakdown.total());
}

#[test]
fn deep_model_is_rejected_by_fpga_but_accepted_by_cpu() {
    let cfg = ForestConfig::classification(4, 4, 3).with_depth(12);
    let forest = RandomForest::synthetic_full(&cfg, 8);
    let bundle = ModelBundle::serialize(&forest);
    let data = Dataset::iris(50, 2).normalized();
    assert!(QueryPipeline::new(FpgaBackend::paper_default())
        .execute(&bundle, data.frame())
        .is_err());
    assert!(QueryPipeline::new(SklearnCpu::with_threads(2))
        .execute(&bundle, data.frame())
        .is_ok());
}

#[test]
fn bundle_survives_storage_roundtrip_through_pipeline() {
    // Simulate "model stored in a database table": raw bytes out, raw bytes
    // back in, then scored.
    let (bundle, test) = trained_iris();
    let stored: Vec<u8> = bundle.as_bytes().to_vec();
    let restored = ModelBundle::from_bytes(bytes::Bytes::from(stored));
    let a = QueryPipeline::new(OnnxCpu::single_thread())
        .execute(&bundle, test.frame())
        .unwrap();
    let b = QueryPipeline::new(OnnxCpu::single_thread())
        .execute(&restored, test.frame())
        .unwrap();
    assert_eq!(a.predictions, b.predictions);
}
