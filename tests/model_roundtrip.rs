//! Property tests on the model representations: serialization and the flat
//! layout must both roundtrip losslessly, and flat-layout scoring must
//! agree with tree scoring on arbitrary inputs.

use proptest::prelude::*;

use mlscore::prelude::*;
use mlscore_forest::{FlatForest, FlatTree, ModelBundle};

fn arb_config() -> impl Strategy<Value = ForestConfig> {
    (1usize..10, 0usize..9, 1usize..12, 2u32..6).prop_map(
        |(n_trees, depth, n_features, n_classes)| {
            ForestConfig::classification(n_trees, n_features, n_classes).with_depth(depth)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bundle_roundtrip_full(config in arb_config(), seed in any::<u64>()) {
        let forest = RandomForest::synthetic_full(&config, seed);
        let bundle = ModelBundle::serialize(&forest);
        prop_assert_eq!(bundle.deserialize().unwrap(), forest);
    }

    #[test]
    fn bundle_roundtrip_capped(
        config in arb_config(),
        max_leaves in 1usize..300,
        seed in any::<u64>(),
    ) {
        let forest = RandomForest::synthetic_capped(&config, max_leaves, seed);
        let bundle = ModelBundle::serialize(&forest);
        prop_assert_eq!(bundle.deserialize().unwrap(), forest);
    }

    #[test]
    fn bundle_roundtrip_regression(
        n_trees in 1usize..8,
        depth in 0usize..8,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::regression(n_trees, 5).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let bundle = ModelBundle::serialize(&forest);
        prop_assert_eq!(bundle.deserialize().unwrap(), forest);
    }

    #[test]
    fn truncated_bundles_never_panic(
        config in arb_config(),
        seed in any::<u64>(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let forest = RandomForest::synthetic_full(&config, seed);
        let raw = ModelBundle::serialize(&forest).as_bytes().to_vec();
        let cut = ((raw.len() as f64) * cut_fraction) as usize;
        if cut < raw.len() {
            let bundle = ModelBundle::from_bytes(bytes::Bytes::from(raw[..cut].to_vec()));
            prop_assert!(bundle.deserialize().is_err());
        }
    }

    #[test]
    fn corrupted_bundles_never_roundtrip_silently_wrong(
        config in arb_config(),
        seed in any::<u64>(),
        flip_byte in any::<usize>(),
        flip_bits in 1u8..=255,
    ) {
        // Flipping bits may or may not produce a parseable bundle, but it
        // must never panic, and if it parses the result must still be a
        // structurally valid forest (from_trees validation holds).
        let forest = RandomForest::synthetic_full(&config, seed);
        let mut raw = ModelBundle::serialize(&forest).as_bytes().to_vec();
        let idx = flip_byte % raw.len();
        raw[idx] ^= flip_bits;
        let bundle = ModelBundle::from_bytes(bytes::Bytes::from(raw));
        if let Ok(parsed) = bundle.deserialize() {
            // Structural invariants held by construction.
            prop_assert!(parsed.n_trees() > 0);
            for tree in parsed.trees() {
                prop_assert!(tree
                    .validate(parsed.n_features(), parsed.task().n_classes())
                    .is_ok());
            }
        }
    }

    #[test]
    fn flat_layout_roundtrips_and_scores_identically(
        config in arb_config(),
        seed in any::<u64>(),
        xs in proptest::collection::vec(0.0f32..1.0, 12),
    ) {
        let forest = RandomForest::synthetic_full(&config, seed);
        let flat = FlatForest::from_forest(&forest, config.depth).unwrap();
        // Roundtrip each tree.
        for (flat_tree, tree) in flat.trees().iter().zip(forest.trees()) {
            prop_assert_eq!(&flat_tree.to_tree(forest.task()).unwrap(), tree);
        }
        // Score an arbitrary record.
        let row = &xs[..config.n_features.min(xs.len())];
        if row.len() == config.n_features {
            let expected = forest.predict_one(row).as_class().unwrap();
            prop_assert_eq!(flat.score_one(row) as u32, expected);
        }
    }

    #[test]
    fn flat_tree_path_never_exceeds_capacity_depth(
        depth in 0usize..10,
        seed in any::<u64>(),
        xs in proptest::collection::vec(0.0f32..1.0, 6),
    ) {
        let cfg = ForestConfig::classification(1, 6, 2).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let flat = FlatTree::from_tree(&forest.trees()[0], 10).unwrap();
        let (_, visited) = flat.score_counting(&xs);
        prop_assert!(visited <= 11, "visited {} records", visited);
    }
}

#[test]
fn bundle_len_matches_bytes() {
    let cfg = ForestConfig::classification(2, 3, 2).with_depth(3);
    let forest = RandomForest::synthetic_full(&cfg, 1);
    let bundle = ModelBundle::serialize(&forest);
    assert_eq!(bundle.len(), bundle.as_bytes().len());
}
