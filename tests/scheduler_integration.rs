//! Scheduler integration: policies over the full paper grid, and the Fig. 1
//! narrative expressed as assertions on the oracle's decisions.

use mlscore_core::calibration::{paper_model, RECORD_SWEEP, TREE_SWEEP};
use mlscore_data::DatasetSpec;
use mlscore_forest::ModelStats;
use mlscore_sched::{
    evaluate_policy, paper_backends, AffineFitPolicy, HeuristicPolicy, OraclePolicy, Policy,
};

fn paper_grid() -> Vec<(ModelStats, u64)> {
    let mut grid = Vec::new();
    for dataset in DatasetSpec::all() {
        for &trees in &TREE_SWEEP {
            let stats = ModelStats::of(&paper_model(dataset, trees, 10));
            for &n in &RECORD_SWEEP {
                grid.push((stats, n));
            }
        }
    }
    grid
}

#[test]
fn oracle_decisions_partition_like_fig1() {
    // Fig. 1: CPU in the top (small-data) region, GPU bottom-left (simple
    // models, big data), FPGA bottom-right (complex models, big data).
    let backends = paper_backends();
    let mut cpu_cells = 0;
    let mut gpu_cells = 0;
    let mut fpga_cells = 0;
    for (stats, n) in paper_grid() {
        let c = OraclePolicy.choose(&stats, n, &backends).unwrap();
        if c.name.starts_with("CPU") {
            cpu_cells += 1;
            assert!(
                n <= 100_000,
                "CPU should not win huge batches ({} trees, {n} records)",
                stats.n_trees
            );
        } else if c.name.starts_with("GPU") {
            gpu_cells += 1;
        } else {
            fpga_cells += 1;
            assert!(
                n >= 1_000,
                "FPGA should not win tiny batches ({} trees, {n} records)",
                stats.n_trees
            );
        }
    }
    assert!(cpu_cells > 0, "some cells must stay on the CPU");
    assert!(gpu_cells > 0, "some cells must go to the GPU");
    assert!(fpga_cells > 0, "some cells must go to the FPGA");
    // The small-data region dominates the grid (5 of 7 sweep decades are
    // below the crossovers).
    assert!(cpu_cells > fpga_cells);
}

#[test]
fn policies_rank_oracle_heuristic_affine() {
    let backends = paper_backends();
    let grid = paper_grid();
    let oracle = evaluate_policy(&OraclePolicy, &grid, &backends);
    let heuristic = evaluate_policy(&HeuristicPolicy::default(), &grid, &backends);
    let affine = evaluate_policy(&AffineFitPolicy::default(), &grid, &backends);
    assert_eq!(oracle.mean_factor, 1.0);
    assert!(heuristic.mean_factor >= 1.0);
    assert!(affine.mean_factor >= 1.0);
    // The affine fit probes the real cost models, so it should track the
    // oracle more closely than a static threshold rule on average.
    assert!(
        affine.mean_factor <= heuristic.mean_factor + 0.25,
        "affine {} vs heuristic {}",
        affine.mean_factor,
        heuristic.mean_factor
    );
}

#[test]
fn heuristic_agreement_is_high_on_the_paper_grid() {
    let backends = paper_backends();
    let grid = paper_grid();
    let heuristic = evaluate_policy(&HeuristicPolicy::default(), &grid, &backends);
    assert!(
        heuristic.agreement() > 0.5,
        "heuristic agreement {}",
        heuristic.agreement()
    );
    assert!(
        heuristic.worst_factor < 50.0,
        "heuristic worst-case {}x",
        heuristic.worst_factor
    );
}

#[test]
fn oracle_respects_support_constraints_across_grid() {
    // Deep models exclude the FPGA; multi-class excludes RAPIDS; the oracle
    // must still produce a valid choice everywhere.
    let backends = paper_backends();
    for depth in [11usize, 14] {
        for dataset in DatasetSpec::all() {
            let stats = ModelStats::of(&paper_model(dataset, 64, depth));
            for &n in &RECORD_SWEEP {
                let c = OraclePolicy.choose(&stats, n, &backends).unwrap();
                assert_ne!(c.name, "FPGA", "depth {depth} must exclude the FPGA");
            }
        }
    }
}

#[test]
fn choices_are_stable_across_repeated_evaluation() {
    let backends = paper_backends();
    let stats = ModelStats::of(&paper_model(DatasetSpec::Higgs, 128, 10));
    let a = OraclePolicy.choose(&stats, 123_456, &backends).unwrap();
    let b = OraclePolicy.choose(&stats, 123_456, &backends).unwrap();
    assert_eq!(a, b);
}
