//! Integration tests for the serving engine: equivalence with a serial
//! back-to-back trace replay, byte-identical determinism of the exports,
//! and the coalescing throughput win on the FPGA.

use mlscore::backend::ScoringBackend;
use mlscore::prelude::*;
use mlscore::sched::{paper_backends, OraclePolicy, Policy, QueryTrace};
use mlscore::serve::{CoalesceConfig, QueueConfig};
use mlscore::sim::SimDuration;
use mlscore::telemetry::perfetto;
use std::collections::BTreeMap;

/// Reference serial replay: queries run back to back, each charged the
/// modelled time of the backend the policy picks.
fn serial_replay(
    policy: &dyn Policy,
    trace: &QueryTrace,
    backends: &[Box<dyn ScoringBackend>],
) -> (SimDuration, BTreeMap<String, u64>) {
    let mut total = SimDuration::ZERO;
    let mut picks: BTreeMap<String, u64> = BTreeMap::new();
    for q in trace.queries() {
        let choice = policy
            .choose(&q.stats, q.n_records, backends)
            .expect("every trace query has a supporting backend");
        total += backends[choice.index]
            .estimate(&q.stats, q.n_records)
            .total();
        *picks.entry(choice.name).or_default() += 1;
    }
    (total, picks)
}

/// The engine configured as a degenerate serial device — batch arrivals,
/// no coalescing, no compile charging, unbounded queue — is *exactly* the
/// serial replay loop: same dispatch order, same backend picks, same
/// makespan (modulo float-addition ulps).
#[test]
fn serial_batch_run_reproduces_serial_replay() {
    let queries = 120;
    let seed = 9;
    let engine = ServeEngine::new(
        paper_backends(),
        ModelCatalog::paper_mix(),
        ServeConfig {
            coalesce: CoalesceConfig::disabled(),
            serial_device: true,
            charge_compile: false,
            ..ServeConfig::default()
        },
    );
    let report = engine
        .run(
            &WorkloadSpec {
                queries,
                seed,
                arrivals: ArrivalProcess::Batch,
            },
            &Tracer::disabled(),
        )
        .expect("batch specs are always valid");
    let (legacy_total, legacy_pick_map) = serial_replay(
        &OraclePolicy,
        &QueryTrace::synthetic(queries, seed),
        &paper_backends(),
    );

    assert!(report.is_conserved());
    assert_eq!(report.completed, queries as u64);
    // Same backend mix, query for query.
    let legacy_picks: Vec<(String, u64)> = legacy_pick_map.into_iter().collect();
    let engine_picks: Vec<(String, u64)> =
        report.picks.iter().map(|(n, c)| (n.clone(), *c)).collect();
    assert_eq!(engine_picks, legacy_picks);
    // Dispatch order is trace order, and each request's service time is the
    // legacy per-query latency.
    for (i, d) in report.dispatches.iter().enumerate() {
        assert_eq!(d.id, i as u64);
        assert_eq!(d.batch, i as u64);
    }
    // The serial makespan is the legacy total (same additions, same order).
    let diff = (report.makespan.as_secs() - legacy_total.as_secs()).abs();
    assert!(
        diff <= 1e-12 * legacy_total.as_secs().max(1.0),
        "engine makespan {} vs legacy total {}",
        report.makespan,
        legacy_total
    );
}

/// Same seed + same configuration ⇒ byte-identical Perfetto export and
/// identical report, run to run.
#[test]
fn serving_exports_are_byte_identical_across_runs() {
    let run_once = || {
        let engine = ServeEngine::new(
            paper_backends(),
            ModelCatalog::paper_mix(),
            ServeConfig {
                queue: QueueConfig {
                    capacity: Some(16),
                    ..QueueConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        let tracer = Tracer::new();
        let report = engine
            .run(
                &WorkloadSpec {
                    queries: 80,
                    seed: 7,
                    arrivals: ArrivalProcess::OpenPoisson { rate_qps: 900.0 },
                },
                &tracer,
            )
            .expect("a positive finite Poisson rate is valid");
        (perfetto::to_json(&tracer.take()), report)
    };
    let (json_a, report_a) = run_once();
    let (json_b, report_b) = run_once();
    assert_eq!(json_a, json_b, "Perfetto export must be byte-identical");
    assert_eq!(report_a.dispatches, report_b.dispatches);
    assert_eq!(report_a.makespan, report_b.makespan);
    assert_eq!(report_a.picks, report_b.picks);
    assert!(report_a.is_conserved());
}

/// The tentpole effect: under overload on the FPGA alone, merging queued
/// same-model requests into one device pass amortizes the fixed per-call
/// overheads and measurably raises throughput at the same offered load.
#[test]
fn coalescing_raises_fpga_throughput_under_overload() {
    let run_fpga = |coalesce_on: bool| {
        let engine = ServeEngine::new(
            paper_backends()
                .into_iter()
                .filter(|b| b.name() == "FPGA")
                .collect(),
            ModelCatalog::paper_mix(),
            ServeConfig {
                queue: QueueConfig {
                    capacity: Some(32),
                    ..QueueConfig::default()
                },
                coalesce: if coalesce_on {
                    CoalesceConfig::default()
                } else {
                    CoalesceConfig::disabled()
                },
                ..ServeConfig::default()
            },
        );
        engine
            .run(
                &WorkloadSpec {
                    queries: 300,
                    seed: 42,
                    arrivals: ArrivalProcess::OpenPoisson { rate_qps: 2_000.0 },
                },
                &Tracer::disabled(),
            )
            .expect("a positive finite Poisson rate is valid")
    };
    let on = run_fpga(true);
    let off = run_fpga(false);
    assert!(on.is_conserved() && off.is_conserved());
    assert!(on.coalesced_batches > 0, "overload must merge batches");
    assert!(
        on.throughput_qps() > off.throughput_qps(),
        "coalescing on {:.1} qps must beat off {:.1} qps",
        on.throughput_qps(),
        off.throughput_qps()
    );
    // The shed counters register overload in both configurations.
    assert!(on.shed() + off.shed() > 0);
}
