//! Integration of the Fig. 6 offload decomposition and LogCA with the real
//! backends: the analytic models must tell the same story as the full cost
//! models they summarize.

use mlscore::prelude::*;
use mlscore_backend::OnnxCpu;
use mlscore_fpga::FpgaBackend;
use mlscore_gpu::{HummingbirdGpu, RapidsFil};
use mlscore_offload::{LogCa, OffloadCosts, OffloadSummary};

fn heavy_stats() -> ModelStats {
    ModelStats::of(&RandomForest::synthetic_full(
        &ForestConfig::classification(128, 28, 2).with_depth(10),
        3,
    ))
}

#[test]
fn every_accelerator_decomposes_into_o_l_c() {
    let stats = heavy_stats();
    let accelerators: Vec<Box<dyn ScoringBackend>> = vec![
        Box::new(FpgaBackend::paper_default()),
        Box::new(HummingbirdGpu::p100()),
        Box::new(RapidsFil::p100()),
    ];
    for accel in accelerators {
        let b = accel.estimate(&stats, 1_000_000);
        let costs = OffloadCosts::from_breakdown(&b);
        // Compute dominates at 1M records for every accelerator.
        assert!(
            costs.compute > costs.overhead,
            "{}: compute should exceed overhead at 1M records",
            accel.name()
        );
        // O + L + C_A accounts for the entire offload-level breakdown
        // (up to float summation order).
        let accounted =
            (costs.total() + b.total_class(mlscore_sim::StageClass::Pipeline)).as_secs();
        let total = b.total().as_secs();
        assert!(
            (accounted - total).abs() <= 1e-12 * total.max(1e-30),
            "{}: O+L+C+pipeline {accounted} != total {total}",
            accel.name()
        );
    }
}

#[test]
fn kernel_speedup_always_exceeds_end_to_end_speedup() {
    // The paper's core critique of prior work, asserted over a grid.
    let stats = heavy_stats();
    let cpu = OnnxCpu::paper_52th();
    let fpga = FpgaBackend::paper_default();
    for n in [1_000u64, 100_000, 1_000_000] {
        let host = cpu.estimate(&stats, n).total();
        let summary = OffloadSummary::new(host, &fpga.estimate(&stats, n));
        assert!(
            summary.kernel_speedup() >= summary.speedup(),
            "at {n} records: kernel {} < end-to-end {}",
            summary.kernel_speedup(),
            summary.speedup()
        );
    }
}

#[test]
fn logca_break_even_brackets_the_measured_crossover() {
    // Fit LogCA from the FPGA's own cost structure at 1M records and check
    // its predicted break-even against a direct scan of the cost models.
    let stats = heavy_stats();
    let cpu = OnnxCpu::paper_52th();
    let fpga = FpgaBackend::paper_default();
    let n_ref = 1_000_000u64;
    let host = cpu.estimate(&stats, n_ref).total();
    let breakdown = fpga.estimate(&stats, n_ref);
    let costs = OffloadCosts::from_breakdown(&breakdown);

    let model = LogCa::new(
        costs.overhead + fpga.estimate(&stats, 1).total_class_transfer(),
        (costs.transfer - fpga.estimate(&stats, 1).total_class_transfer()) / n_ref as f64,
        host / n_ref as f64,
        host.ratio(costs.compute),
    );
    let g1 = model.break_even().expect("offload is worth it at scale");

    // Direct scan of the real models.
    let mut measured = None;
    for exp in 0..21 {
        let n = 1u64 << exp;
        if fpga.estimate(&stats, n).total() < cpu.estimate(&stats, n).total() {
            measured = Some(n);
            break;
        }
    }
    let measured = measured.expect("crossover exists") as f64;
    assert!(
        g1 / measured < 30.0 && measured / g1 < 30.0,
        "LogCA break-even {g1} vs measured {measured}"
    );
}

/// Helper: transfer-class total of a breakdown (extension trait style,
/// local to the test).
trait TransferTotal {
    fn total_class_transfer(&self) -> SimDuration;
}

impl TransferTotal for TimingBreakdown {
    fn total_class_transfer(&self) -> SimDuration {
        self.total_class(mlscore_sim::StageClass::Transfer)
    }
}

#[test]
fn offload_summaries_flip_with_batch_size() {
    // One record: bad offload. One million: great offload. The same model.
    let stats = heavy_stats();
    let cpu = OnnxCpu::paper_52th();
    let fpga = FpgaBackend::paper_default();
    let tiny = OffloadSummary::new(cpu.estimate(&stats, 1).total(), &fpga.estimate(&stats, 1));
    let huge = OffloadSummary::new(
        cpu.estimate(&stats, 1_000_000).total(),
        &fpga.estimate(&stats, 1_000_000),
    );
    assert!(!tiny.beneficial());
    assert!(tiny.mispick_penalty() > 1.0);
    assert!(huge.beneficial());
    assert!(huge.speedup() > 30.0);
}
