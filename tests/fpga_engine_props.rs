//! Property tests on the FPGA inference engine: multi-pass voting, cycle
//! accounting, and BRAM-driven capacity boundaries for arbitrary model
//! shapes.

use proptest::prelude::*;

use mlscore::prelude::*;
use mlscore_fpga::{EngineConfig, FpgaDevice, InferenceEngine, MemoryBackend};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn multi_pass_equals_reference_for_any_tree_count(
        n_trees in 1usize..400,
        depth in 0usize..7,
        n_classes in 2u32..5,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::classification(n_trees, 4, n_classes).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let data: Vec<f32> = (0..24 * 4).map(|i| (i as f32 * 0.173) % 1.0).collect();
        let engine = InferenceEngine::paper_default();
        let model = engine.load(&forest).unwrap();
        prop_assert_eq!(model.passes(), n_trees.div_ceil(128));
        let run = engine.execute(&model, &data);
        prop_assert_eq!(run.predictions, forest.predict_batch(&data));
        // Cycle accounting scales with passes.
        prop_assert_eq!(run.report.passes, model.passes());
        prop_assert_eq!(
            run.report.streaming_cycles,
            24 * model.passes() as u64
        );
    }

    #[test]
    fn cycle_reports_are_data_independent(
        n_trees in 1usize..64,
        depth in 1usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::classification(n_trees, 3, 2).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let engine = InferenceEngine::paper_default();
        let model = engine.load(&forest).unwrap();
        let a: Vec<f32> = vec![0.0; 30];
        let b: Vec<f32> = (0..30).map(|i| (i as f32 * 0.777) % 1.0).collect();
        let run_a = engine.execute(&model, &a);
        let run_b = engine.execute(&model, &b);
        // The pipeline is data-oblivious: identical cycle accounting for
        // any record values.
        prop_assert_eq!(run_a.report, run_b.report);
    }

    #[test]
    fn pe_count_determines_pass_count(
        pe_count in 1usize..200,
        n_trees in 1usize..200,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::classification(n_trees, 3, 2).with_depth(4);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let engine = InferenceEngine::new(
            FpgaDevice::stratix10_gx2800(),
            EngineConfig {
                pe_count,
                ..EngineConfig::default()
            },
        );
        let model = engine.load(&forest).unwrap();
        prop_assert_eq!(model.passes(), n_trees.div_ceil(pe_count));
        let data: Vec<f32> = (0..15).map(|i| (i as f32 * 0.41) % 1.0).collect();
        let run = engine.execute(&model, &data);
        prop_assert_eq!(run.predictions, forest.predict_batch(&data));
    }

    #[test]
    fn ddr_backend_matches_bram_functionally(
        n_trees in 1usize..32,
        depth in 0usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = ForestConfig::classification(n_trees, 4, 3).with_depth(depth);
        let forest = RandomForest::synthetic_full(&cfg, seed);
        let data: Vec<f32> = (0..20 * 4).map(|i| (i as f32 * 0.59) % 1.0).collect();
        let bram = InferenceEngine::paper_default();
        let ddr = InferenceEngine::new(
            FpgaDevice::stratix10_gx2800(),
            EngineConfig {
                memory: MemoryBackend::Ddr,
                ..EngineConfig::default()
            },
        );
        let run_bram = bram.execute(&bram.load(&forest).unwrap(), &data);
        let run_ddr = ddr.execute(&ddr.load(&forest).unwrap(), &data);
        // Memory placement changes timing, never results.
        prop_assert_eq!(run_bram.predictions, run_ddr.predictions);
        prop_assert!(run_ddr.report.total_cycles >= run_bram.report.total_cycles);
    }
}
